"""Memory-communication model — regenerates Table IV of the paper.

For one convolutional layer executed with the Fig. 7 dataflow the model
counts the words crossing each boundary of the hierarchy:

``oMemory``
    Partial sums are accumulated across the ``C`` ifmap channels in oMemory:
    every output pixel is read and written once per ifmap channel, i.e.
    ``2 * E * E_w * M * C_per_group`` accesses per image.  (This formula
    reproduces the paper's oMemory row exactly for all five AlexNet layers.)

``kMemory``
    A stationary weight is re-read from the per-PE register file once per
    stripe pattern (activity factor ``1/(K*E)``, Sec. V.C); for strided
    layers the pattern restarts every output row, so the weight is re-read
    once per output row.  Reads per image: ``K^2 * pairs * stripes`` (stride
    1) or ``K^2 * pairs * E`` (stride > 1).

``iMemory``
    The chain streams each stripe of the current ifmap channel out of
    iMemory once per ofmap-channel tile (the ``Tm`` primitives share the
    stream): ``outer_tiles * stripes * stripe_rows * W_padded * C_per_group``
    reads per image per group.

``DRAM``
    Kernels are loaded once per batch; ofmaps are written once per image;
    ifmaps are read once per image when a group's ifmaps fit in iMemory and
    once per ofmap-channel tile otherwise.

Absolute megabytes for layers whose tiling constants the paper does not
state (conv1's strided ifmap path, conv2) deviate — see EXPERIMENTS.md — but
the ordering oMemory >> kMemory > iMemory ~ DRAM and the magnitudes of the
stride-1 layers match.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.cnn.layer import ConvLayer
from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.core.dataflow import DataflowPlanner, TileConfig
from repro.core.mapper import LayerMapper
from repro.core.scan import stripe_plan


@dataclass(frozen=True)
class LayerTraffic:
    """Word/byte counts for one layer over a whole batch."""

    layer_name: str
    batch: int
    dram_bytes: int
    imemory_bytes: int
    kmemory_bytes: int
    omemory_bytes: int

    @property
    def onchip_bytes(self) -> int:
        """Total on-chip SRAM/register-file traffic."""
        return self.imemory_bytes + self.kmemory_bytes + self.omemory_bytes

    @property
    def total_bytes(self) -> int:
        """All traffic including DRAM."""
        return self.onchip_bytes + self.dram_bytes

    def as_megabytes(self) -> Dict[str, float]:
        """Row of Table IV in decimal megabytes."""
        return {
            "DRAM": self.dram_bytes / 1e6,
            "iMemory": self.imemory_bytes / 1e6,
            "kMemory": self.kmemory_bytes / 1e6,
            "oMemory": self.omemory_bytes / 1e6,
        }


@dataclass(frozen=True)
class NetworkTraffic:
    """Traffic of every convolutional layer of a network (the full Table IV)."""

    network_name: str
    batch: int
    layers: List[LayerTraffic]

    def totals(self) -> Dict[str, float]:
        """The "Total" column of Table IV, in decimal megabytes."""
        return {
            "DRAM": sum(layer.dram_bytes for layer in self.layers) / 1e6,
            "iMemory": sum(layer.imemory_bytes for layer in self.layers) / 1e6,
            "kMemory": sum(layer.kmemory_bytes for layer in self.layers) / 1e6,
            "oMemory": sum(layer.omemory_bytes for layer in self.layers) / 1e6,
        }

    def table(self) -> Dict[str, Dict[str, float]]:
        """Layer-name -> {store -> MB} mapping plus the totals row."""
        rows = {layer.layer_name: layer.as_megabytes() for layer in self.layers}
        rows["Total"] = self.totals()
        return rows


class TrafficModel:
    """Computes :class:`LayerTraffic` for a chain configuration."""

    def __init__(self, config: ChainConfig | None = None) -> None:
        self.config = config or ChainConfig()
        self.mapper = LayerMapper(self.config)
        self.planner = DataflowPlanner(self.config)

    # ------------------------------------------------------------------ #
    # per-store word counts (per image unless stated otherwise)
    # ------------------------------------------------------------------ #
    def omemory_words(self, layer: ConvLayer) -> int:
        """oMemory accesses per image: one read + one write per (pixel, ifmap channel)."""
        return 2 * layer.out_height * layer.out_width * layer.out_channels \
            * layer.in_channels_per_group

    def kmemory_words(self, layer: ConvLayer) -> int:
        """kMemory reads per image."""
        k = layer.kernel_size
        pairs = layer.channel_pairs()
        if layer.stride == 1:
            repeats = len(stripe_plan(layer.out_height, k))
        else:
            repeats = layer.out_height
        return k * k * pairs * repeats

    def imemory_words(self, layer: ConvLayer, tile: TileConfig) -> int:
        """iMemory reads per image (chain-side streaming)."""
        stripes = math.ceil(layer.out_height / tile.th)
        outer_tiles_per_group = math.ceil(layer.out_channels_per_group / tile.tm)
        words_per_group = (
            outer_tiles_per_group
            * stripes
            * tile.stripe_rows
            * layer.padded_width
            * layer.in_channels_per_group
        )
        return words_per_group * layer.groups

    def dram_words(self, layer: ConvLayer, tile: TileConfig, batch: int) -> int:
        """DRAM words for the whole batch.

        Ifmaps are fetched once per image when either (a) a group's whole
        ifmaps fit in iMemory, or (b) the stripe region of *all* the group's
        channels fits in iMemory (then every ofmap channel of the group is
        produced from the buffered stripe before it is evicted — the AlexNet
        conv1 case).  Otherwise every ofmap-channel tile re-fetches them.
        """
        word = self.config.word_bytes
        weights = layer.weight_count  # once per batch
        ofmaps = layer.output_pixels * batch
        ifmap_group_bytes = (
            layer.in_channels_per_group * layer.in_height * layer.in_width * word
        )
        stripe_region_bytes = (
            layer.in_channels_per_group * tile.stripe_rows * layer.padded_width * word
        )
        if ifmap_group_bytes <= self.config.imemory_bytes:
            refetch = 1
        elif stripe_region_bytes <= self.config.imemory_bytes:
            refetch = 1
        else:
            refetch = math.ceil(layer.out_channels_per_group / tile.tm)
        ifmaps = layer.input_pixels * refetch * batch
        return weights + ofmaps + ifmaps

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def layer_traffic(self, layer: ConvLayer, batch: int = 4) -> LayerTraffic:
        """Traffic of one layer for a batch (Table IV uses batch = 4)."""
        word = self.config.word_bytes
        mapping = self.mapper.map_layer(layer)
        tile = self.planner.plan(layer, mapping.active_primitives)
        return LayerTraffic(
            layer_name=layer.name,
            batch=batch,
            dram_bytes=self.dram_words(layer, tile, batch) * word,
            imemory_bytes=self.imemory_words(layer, tile) * batch * word,
            kmemory_bytes=self.kmemory_words(layer) * batch * word,
            omemory_bytes=self.omemory_words(layer) * batch * word,
        )

    def network_traffic(self, network: Network, batch: int = 4) -> NetworkTraffic:
        """Traffic of every convolutional layer (the full Table IV)."""
        return NetworkTraffic(
            network_name=network.name,
            batch=batch,
            layers=[self.layer_traffic(layer, batch) for layer in network.conv_layers],
        )

    def reuse_summary(self, layer: ConvLayer) -> Dict[str, float]:
        """Average reuse of each operand inside the chain (for reports)."""
        mapping = self.mapper.map_layer(layer)
        tile = self.planner.plan(layer, mapping.active_primitives)
        macs = layer.macs
        return {
            "ifmap_macs_per_imemory_read": macs / max(1, self.imemory_words(layer, tile)),
            "weight_macs_per_kmemory_read": macs / max(1, self.kmemory_words(layer)),
            "macs_per_omemory_access": macs / max(1, self.omemory_words(layer)),
        }
