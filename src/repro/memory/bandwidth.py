"""Memory-bandwidth requirement analysis.

One of the paper's central arguments (abstract, Sec. IV.B) is that the serial
input scheme gives every primitive an *invariant* input-bandwidth requirement
— two ifmap pixels per cycle — regardless of the kernel size, and that the
column-wise scan therefore caps the chain's aggregate SRAM bandwidth demand
far below what a memory-centric design needs.  This module quantifies that:

* per-primitive and chain-aggregate ifmap bandwidth (words/cycle and GB/s),
* oMemory bandwidth implied by the accumulation dataflow,
* the average DRAM bandwidth a layer needs so that off-chip transfers do not
  become the bottleneck, compared against a configurable DRAM interface,
* the same numbers for a hypothetical memory-centric execution of the layer
  (every operand fetched per MAC), which is the comparison the taxonomy
  section makes qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cnn.layer import ConvLayer
from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.core.mapper import LayerMapper
from repro.core.performance import PerformanceModel
from repro.memory.dram import DramSpec
from repro.memory.traffic import TrafficModel


@dataclass(frozen=True)
class LayerBandwidth:
    """Bandwidth requirements of one layer on the chain."""

    layer_name: str
    kernel_size: int
    #: ifmap words per cycle entering the chain (2 per active primitive)
    chain_input_words_per_cycle: float
    #: oMemory words per cycle (one read + one write per completed output)
    omemory_words_per_cycle: float
    #: average DRAM bandwidth needed to sustain the layer (bytes/s)
    dram_bytes_per_second: float
    #: DRAM bandwidth a memory-centric execution would need (bytes/s)
    memory_centric_bytes_per_second: float
    #: sustainable bandwidth of the configured DRAM interface (bytes/s)
    dram_capacity_bytes_per_second: float

    @property
    def chain_input_gbytes_per_second(self) -> float:
        """Chain-side ifmap bandwidth in GB/s (16-bit words at the core clock)."""
        return self.chain_input_words_per_cycle * 2 / 1e9

    @property
    def dram_utilisation(self) -> float:
        """Fraction of the DRAM interface the layer needs (>1 means DRAM-bound)."""
        return self.dram_bytes_per_second / self.dram_capacity_bytes_per_second

    @property
    def dram_bound(self) -> bool:
        """True when the layer cannot be sustained by the DRAM interface."""
        return self.dram_utilisation > 1.0

    @property
    def bandwidth_reduction_vs_memory_centric(self) -> float:
        """How much less DRAM bandwidth the chain needs than a memory-centric design."""
        if self.dram_bytes_per_second == 0:
            return float("inf")
        return self.memory_centric_bytes_per_second / self.dram_bytes_per_second


class BandwidthAnalyzer:
    """Computes :class:`LayerBandwidth` for a chain configuration."""

    def __init__(self, config: ChainConfig | None = None,
                 dram_spec: DramSpec | None = None) -> None:
        self.config = config or ChainConfig()
        self.dram_spec = dram_spec or DramSpec()
        self.mapper = LayerMapper(self.config)
        self.performance = PerformanceModel(self.config)
        self.traffic = TrafficModel(self.config)

    # ------------------------------------------------------------------ #
    # per-layer analysis
    # ------------------------------------------------------------------ #
    def layer_bandwidth(self, layer: ConvLayer, batch: int = 4) -> LayerBandwidth:
        """Bandwidth requirements of one layer."""
        mapping = self.mapper.map_layer(layer)
        perf = self.performance.layer_performance(layer, batch)
        traffic = self.traffic.layer_traffic(layer, batch)

        pixels_per_cycle = self.config.ifmap_channels_per_cycle
        chain_input = pixels_per_cycle * mapping.active_primitives

        # the accumulation dataflow touches oMemory twice per window and the
        # chain completes one window per primitive per cycle in steady state
        omemory_rate = 2.0 * mapping.active_primitives * perf.temporal_utilization

        runtime = perf.total_time_per_batch_s
        dram_rate = traffic.dram_bytes / runtime if runtime > 0 else 0.0

        # memory-centric execution: every MAC reads a weight and an ifmap word
        # and writes back a psum word at the same effective MAC rate
        macs_per_second = layer.macs * batch / runtime if runtime > 0 else 0.0
        memory_centric_rate = macs_per_second * 3 * self.config.word_bytes

        return LayerBandwidth(
            layer_name=layer.name,
            kernel_size=layer.kernel_size,
            chain_input_words_per_cycle=chain_input,
            omemory_words_per_cycle=omemory_rate,
            dram_bytes_per_second=dram_rate,
            memory_centric_bytes_per_second=memory_centric_rate,
            dram_capacity_bytes_per_second=self.dram_spec.effective_bandwidth,
        )

    def network_bandwidth(self, network: Network, batch: int = 4) -> List[LayerBandwidth]:
        """Bandwidth requirements of every convolutional layer."""
        return [self.layer_bandwidth(layer, batch) for layer in network.conv_layers]

    # ------------------------------------------------------------------ #
    # headline invariants
    # ------------------------------------------------------------------ #
    def input_bandwidth_by_kernel(self, kernel_sizes=(3, 5, 7, 9, 11)) -> Dict[int, float]:
        """Per-primitive input bandwidth for each kernel size.

        The paper's invariance claim: this is a constant (2 words/cycle with
        dual channels) regardless of ``K``, whereas a parallel-load design
        would need ``K`` words per cycle.
        """
        return {k: float(self.config.ifmap_channels_per_cycle) for k in kernel_sizes}

    def summary_table(self, network: Network, batch: int = 4) -> Dict[str, Dict[str, float]]:
        """Layer-name -> bandwidth summary rows for reporting."""
        rows: Dict[str, Dict[str, float]] = {}
        for entry in self.network_bandwidth(network, batch):
            rows[entry.layer_name] = {
                "chain input (words/cycle)": entry.chain_input_words_per_cycle,
                "oMemory (words/cycle)": entry.omemory_words_per_cycle,
                "DRAM need (GB/s)": entry.dram_bytes_per_second / 1e9,
                "DRAM util. (%)": entry.dram_utilisation * 100.0,
                "reduction vs memory-centric (x)": entry.bandwidth_reduction_vs_memory_centric,
            }
        return rows
