"""Off-chip DRAM model.

Chain-NN's evaluation excludes DRAM *energy* from the chip power numbers but
reports DRAM *traffic* (Table IV) and relies on a modest bandwidth because the
on-chip hierarchy filters most accesses.  The model tracks bytes moved,
converts them to transfer time under a bandwidth limit, and exposes an
energy-per-byte figure so studies that do want to include DRAM energy can.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwmodel.memory import AccessCounters
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DramSpec:
    """Static DRAM interface parameters.

    Defaults are representative of a single-channel LPDDR3-1600 interface of
    the paper's era: 12.8 GB/s peak, ~70 % achievable efficiency, and the
    frequently-cited ~20 pJ/bit (160 pJ/byte) access energy at this node.
    """

    peak_bandwidth_bytes_per_s: float = 12.8e9
    efficiency: float = 0.7
    energy_per_byte_j: float = 160e-12

    def __post_init__(self) -> None:
        check_positive("peak_bandwidth_bytes_per_s", self.peak_bandwidth_bytes_per_s)
        check_positive("efficiency", self.efficiency)
        check_positive("energy_per_byte_j", self.energy_per_byte_j)

    @property
    def effective_bandwidth(self) -> float:
        """Sustainable bandwidth in bytes/s."""
        return self.peak_bandwidth_bytes_per_s * self.efficiency


class Dram:
    """A DRAM channel with traffic counters."""

    def __init__(self, spec: DramSpec | None = None, name: str = "DRAM") -> None:
        self.spec = spec or DramSpec()
        self.name = name
        self.counters = AccessCounters()

    def record_read(self, num_bytes: int) -> None:
        """Account for ``num_bytes`` read from DRAM."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        self.counters.record_read(num_bytes)

    def record_write(self, num_bytes: int) -> None:
        """Account for ``num_bytes`` written to DRAM."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        self.counters.record_write(num_bytes)

    @property
    def total_bytes(self) -> int:
        """Bytes moved in either direction."""
        return self.counters.total_bytes

    def transfer_time_s(self, num_bytes: int | None = None) -> float:
        """Time to move ``num_bytes`` (default: everything recorded so far)."""
        volume = self.total_bytes if num_bytes is None else num_bytes
        return volume / self.spec.effective_bandwidth

    def energy_j(self, num_bytes: int | None = None) -> float:
        """Access energy for ``num_bytes`` (default: everything recorded so far)."""
        volume = self.total_bytes if num_bytes is None else num_bytes
        return volume * self.spec.energy_per_byte_j

    def reset(self) -> None:
        """Clear the traffic counters."""
        self.counters.reset()
