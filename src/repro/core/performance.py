"""Analytical cycle/throughput model of the chain (reproduces Fig. 9, Sec. V.B).

The unit of work is the *channel pair* — one ``K x K`` kernel plane convolved
over one ifmap plane by one systolic primitive.  A pair is processed as a
sequence of stripes (Sec. IV.C); the model's cycle count per pair is

    ``cycles_pair = stripes * per_stripe``

with two fidelity modes:

``paper`` (default)
    The idealised accounting the paper's Fig. 9 numbers follow: fractional
    stripes (``E / K`` — the chain never drains between stripes of a pass),
    ``K * E_w`` streaming cycles per stripe scaled by the stride (strided
    layers are input-bound: every ifmap column passes through the chain), and
    a ``K^2 - 1`` fill that is hidden whenever striding already makes the
    stripe input-bound.  This reproduces the paper's conv1/3/4/5 times to
    <1 % and conv2 to ~18 % (see EXPERIMENTS.md).

``detailed``
    The register-accurate accounting of the cycle-level simulator: integral
    stripes (a short final stripe still pays full column cadence), padded
    width, plus the per-stripe drain latency.  Used to cross-validate the
    simulator and to quantify how optimistic the paper's accounting is.

Kernel loading takes one weight per cycle (the rate the paper's per-layer
kernel-load times imply) and happens once per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal

from repro.cnn.layer import ConvLayer
from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.core.mapper import LayerMapper, LayerMapping
from repro.core.scan import ColumnScanSchedule, stripe_plan
from repro.errors import ConfigurationError

Mode = Literal["paper", "detailed"]


# --------------------------------------------------------------------- #
# per-pair closed forms (module level so the columnar batch evaluator of
# :mod:`repro.analysis.batch` evaluates the *same* arithmetic per layer)
# --------------------------------------------------------------------- #
def per_stripe_cycles_paper(layer: ConvLayer) -> float:
    """Idealised cycles to stream one stripe of one channel pair.

    ``K * E_w`` column-scan cycles per stripe, scaled by the stride (strided
    layers are input-bound: every ifmap column passes through the chain),
    plus a ``K^2 - 1`` fill that hides whenever striding already makes the
    stripe input-bound (this is what the paper's conv1 time implies).  Shared
    by :func:`pair_cycles_paper` and the mapping cost model of
    :class:`repro.analysis.batch.MappingBatchEvaluator`, so the two stay in
    lock-step.
    """
    k = layer.kernel_size
    fill = k * k - 1
    stream = k * layer.out_width * layer.stride
    if layer.stride == 1:
        return stream + fill
    return max(stream, k * layer.out_width + fill)


def pair_cycles_paper(layer: ConvLayer) -> float:
    """Idealised (Fig. 9) cycles for one primitive to process one channel pair."""
    stripes = layer.out_height / layer.kernel_size
    return stripes * per_stripe_cycles_paper(layer)


def pair_cycles_detailed(layer: ConvLayer) -> int:
    """Register-accurate cycles for one channel pair (cycle-sim accounting)."""
    k = layer.kernel_size
    width = layer.padded_width
    total = 0
    drain = 2 * k * k + 2
    for out_rows in stripe_plan(layer.out_height, k):
        stripe_rows = (out_rows - 1) * layer.stride + k
        # strided layers stream every column at stride-1 cadence and
        # discard the outputs that do not fall on the stride grid
        schedule = ColumnScanSchedule(k, width, stripe_rows=min(stripe_rows, 2 * k - 1))
        total += schedule.total_timestamps + drain
    if layer.stride > 1:
        # rows skipped vertically between stripes still have to be read
        # out of iMemory but do not occupy the MAC schedule; the dominant
        # term is the horizontal stride-1 streaming already counted above.
        total = int(total * layer.stride)
    return total


def pair_cycles_for(layer: ConvLayer, mode: Mode) -> float:
    """Dispatch the per-pair closed form by fidelity mode."""
    if mode == "paper":
        return pair_cycles_paper(layer)
    if mode == "detailed":
        return float(pair_cycles_detailed(layer))
    raise ConfigurationError(f"mode must be 'paper' or 'detailed', got {mode!r}")


@dataclass(frozen=True)
class LayerPerformance:
    """Timing of one convolutional layer on the chain."""

    layer: ConvLayer
    mapping: LayerMapping
    batch: int
    conv_cycles_per_image: float
    kernel_load_cycles: int
    frequency_hz: float

    # ------------------------------------------------------------------ #
    # times
    # ------------------------------------------------------------------ #
    @property
    def conv_cycles_per_batch(self) -> float:
        """Convolution cycles for the whole batch."""
        return self.conv_cycles_per_image * self.batch

    @property
    def conv_time_per_image_s(self) -> float:
        """Convolution time for one image."""
        return self.conv_cycles_per_image / self.frequency_hz

    @property
    def conv_time_per_batch_s(self) -> float:
        """Convolution time for the batch."""
        return self.conv_cycles_per_batch / self.frequency_hz

    @property
    def kernel_load_time_s(self) -> float:
        """Kernel-loading time (once per batch)."""
        return self.kernel_load_cycles / self.frequency_hz

    @property
    def total_time_per_batch_s(self) -> float:
        """Convolution plus kernel loading for the batch."""
        return self.conv_time_per_batch_s + self.kernel_load_time_s

    # ------------------------------------------------------------------ #
    # rates
    # ------------------------------------------------------------------ #
    @property
    def achieved_gops(self) -> float:
        """Sustained throughput over the batch (2 ops per MAC)."""
        total_ops = 2 * self.layer.macs * self.batch
        return total_ops / self.total_time_per_batch_s / 1e9

    @property
    def temporal_utilization(self) -> float:
        """Fraction of active-PE cycles that perform useful MACs."""
        useful = self.layer.macs
        offered = self.mapping.active_pes * self.conv_cycles_per_image
        return useful / offered if offered else 0.0

    @property
    def effective_utilization(self) -> float:
        """Spatial x temporal utilization relative to the whole chain."""
        return self.temporal_utilization * self.mapping.spatial_utilization


@dataclass(frozen=True)
class NetworkPerformance:
    """Timing of all convolutional layers of a network."""

    network_name: str
    batch: int
    layers: List[LayerPerformance]
    frequency_hz: float
    peak_gops: float

    @property
    def conv_time_per_batch_s(self) -> float:
        """Convolution time for the batch, summed over layers."""
        return sum(layer.conv_time_per_batch_s for layer in self.layers)

    @property
    def kernel_load_time_s(self) -> float:
        """Kernel-loading time for the batch, summed over layers."""
        return sum(layer.kernel_load_time_s for layer in self.layers)

    @property
    def total_time_per_batch_s(self) -> float:
        """End-to-end convolutional time for the batch."""
        return self.conv_time_per_batch_s + self.kernel_load_time_s

    @property
    def frames_per_second(self) -> float:
        """Sustained frame rate (the paper's 326.2 fps metric for batch 128)."""
        return self.batch / self.total_time_per_batch_s

    @property
    def total_macs_per_image(self) -> int:
        """MACs per image over the evaluated layers."""
        return sum(layer.layer.macs for layer in self.layers)

    @property
    def achieved_gops(self) -> float:
        """Sustained GOPS over the whole batch."""
        total_ops = 2 * self.total_macs_per_image * self.batch
        return total_ops / self.total_time_per_batch_s / 1e9

    @property
    def efficiency_vs_peak(self) -> float:
        """Achieved / peak throughput."""
        return self.achieved_gops / self.peak_gops if self.peak_gops else 0.0

    def layer_times_ms(self) -> Dict[str, float]:
        """Per-layer convolution time in milliseconds for the batch (Fig. 9 bars)."""
        return {layer.layer.name: layer.conv_time_per_batch_s * 1e3 for layer in self.layers}

    def kernel_load_times_ms(self) -> Dict[str, float]:
        """Per-layer kernel-load time in milliseconds (Fig. 9 small bars)."""
        return {layer.layer.name: layer.kernel_load_time_s * 1e3 for layer in self.layers}


class PerformanceModel:
    """Analytical timing model for a chain configuration."""

    def __init__(self, config: ChainConfig | None = None, mode: Mode = "paper") -> None:
        if mode not in ("paper", "detailed"):
            raise ConfigurationError(f"mode must be 'paper' or 'detailed', got {mode!r}")
        self.config = config or ChainConfig()
        self.mode = mode
        self.mapper = LayerMapper(self.config)

    # ------------------------------------------------------------------ #
    # per-pair cycle counts
    # ------------------------------------------------------------------ #
    def pair_cycles(self, layer: ConvLayer) -> float:
        """Cycles for one systolic primitive to process one channel pair."""
        return pair_cycles_for(layer, self.mode)

    # kept as methods for callers that poke at the individual accountings
    def _pair_cycles_paper(self, layer: ConvLayer) -> float:
        return pair_cycles_paper(layer)

    def _pair_cycles_detailed(self, layer: ConvLayer) -> int:
        return pair_cycles_detailed(layer)

    # ------------------------------------------------------------------ #
    # layer / network level
    # ------------------------------------------------------------------ #
    def single_channel_pair_cycles(self, layer: ConvLayer) -> float:
        """Pair cycles for the single-channel strawman of Fig. 5(a).

        With one ifmap channel only ``1/K`` of the peak rate is reachable:
        after each output the primitive idles ``K - 1`` cycles waiting for
        the non-overlapping pixels of the next window.
        """
        return self.pair_cycles(layer) * layer.kernel_size

    def layer_performance(self, layer: ConvLayer, batch: int = 1) -> LayerPerformance:
        """Timing of one layer for a given batch size."""
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        mapping = self.mapper.map_layer(layer)
        pair = self.pair_cycles(layer)
        if not self.config.dual_channel:
            pair = pair * layer.kernel_size
        cycles_per_image = pair * mapping.channel_pairs / mapping.active_primitives
        return LayerPerformance(
            layer=layer,
            mapping=mapping,
            batch=batch,
            conv_cycles_per_image=cycles_per_image,
            kernel_load_cycles=mapping.kernel_load_cycles,
            frequency_hz=self.config.frequency_hz,
        )

    def network_performance(self, network: Network, batch: int = 1) -> NetworkPerformance:
        """Timing of every convolutional layer of a network."""
        layers = [self.layer_performance(layer, batch) for layer in network.conv_layers]
        return NetworkPerformance(
            network_name=network.name,
            batch=batch,
            layers=layers,
            frequency_hz=self.config.frequency_hz,
            peak_gops=self.config.peak_gops,
        )
