"""The paper's contribution: the Chain-NN 1D chain architecture models."""

from repro.core.accelerator import ChainNN, LayerResult, NetworkResult
from repro.core.chain import ChainPartition, PEChain, PrimitiveSlot
from repro.core.config import MAINSTREAM_KERNEL_SIZES, ChainConfig
from repro.core.controller import ChainController, Phase
from repro.core.dataflow import DataflowPlanner, LoopIteration, TileConfig
from repro.core.kernel_loader import KernelLoader, KernelPlacement, LayerLoadPlan
from repro.core.mapper import LayerMapper, LayerMapping
from repro.core.scheduler import BatchSchedule, BatchScheduler, TimelineSegment
from repro.core.pe import DualChannelPE, PEInputs, PEOutputs, TaggedPsum
from repro.core.performance import (
    LayerPerformance,
    NetworkPerformance,
    PerformanceModel,
)
from repro.core.primitive import PrimitiveOutput, StripeRunResult, SystolicPrimitive
from repro.core.scan import ColumnScanSchedule, PixelDelivery, WindowTag, stripe_plan
from repro.core.utilization import (
    UtilizationEntry,
    active_primitives,
    best_chain_lengths,
    minimum_utilization,
    primitive_size,
    utilization_entry,
    utilization_table,
)

__all__ = [
    "ChainNN",
    "LayerResult",
    "NetworkResult",
    "ChainConfig",
    "MAINSTREAM_KERNEL_SIZES",
    "PEChain",
    "ChainPartition",
    "PrimitiveSlot",
    "ChainController",
    "Phase",
    "DataflowPlanner",
    "TileConfig",
    "LoopIteration",
    "KernelLoader",
    "KernelPlacement",
    "LayerLoadPlan",
    "LayerMapper",
    "LayerMapping",
    "BatchScheduler",
    "BatchSchedule",
    "TimelineSegment",
    "DualChannelPE",
    "PEInputs",
    "PEOutputs",
    "TaggedPsum",
    "PerformanceModel",
    "LayerPerformance",
    "NetworkPerformance",
    "SystolicPrimitive",
    "StripeRunResult",
    "PrimitiveOutput",
    "ColumnScanSchedule",
    "PixelDelivery",
    "WindowTag",
    "stripe_plan",
    "UtilizationEntry",
    "utilization_table",
    "utilization_entry",
    "active_primitives",
    "primitive_size",
    "minimum_utilization",
    "best_chain_lengths",
]
