"""The Chain-NN accelerator facade.

``ChainNN`` ties together the mapper, the analytical performance model, the
memory-traffic model and the power model behind one object, which is the
public entry point most examples and benchmarks use:

>>> from repro import ChainNN, alexnet
>>> chip = ChainNN.paper_configuration()
>>> result = chip.run_network(alexnet(), batch=128)
>>> round(result.performance.frames_per_second, 1)   # doctest: +SKIP
350.3

Every result object keeps the per-layer details so Fig. 9 / Table IV /
Fig. 10-style breakdowns can be produced from a single run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cnn.layer import ConvLayer
from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.core.mapper import LayerMapper, LayerMapping
from repro.core.performance import (
    LayerPerformance,
    NetworkPerformance,
    PerformanceModel,
)
from repro.energy.components import EnergyParams
from repro.energy.power import PowerModel, PowerReport
from repro.memory.traffic import LayerTraffic, NetworkTraffic, TrafficModel


@dataclass(frozen=True)
class LayerResult:
    """Everything the models say about one layer at one batch size."""

    layer: ConvLayer
    mapping: LayerMapping
    performance: LayerPerformance
    traffic: LayerTraffic


@dataclass(frozen=True)
class NetworkResult:
    """Everything the models say about a network at one batch size."""

    network: Network
    batch: int
    layers: List[LayerResult]
    performance: NetworkPerformance
    traffic: NetworkTraffic
    power: PowerReport

    @property
    def frames_per_second(self) -> float:
        """Sustained frame rate for the batch."""
        return self.performance.frames_per_second

    @property
    def gops_per_watt(self) -> float:
        """Energy efficiency over the workload."""
        return self.power.gops_per_watt

    def summary(self) -> Dict[str, float]:
        """Headline numbers, keyed the way EXPERIMENTS.md reports them."""
        return {
            "batch": float(self.batch),
            "fps": self.performance.frames_per_second,
            "conv_time_per_batch_ms": self.performance.conv_time_per_batch_s * 1e3,
            "kernel_load_time_ms": self.performance.kernel_load_time_s * 1e3,
            "achieved_gops": self.performance.achieved_gops,
            "total_power_w": self.power.total_w,
            "gops_per_watt": self.power.gops_per_watt,
        }


class ChainNN:
    """The Chain-NN accelerator (model facade)."""

    def __init__(
        self,
        config: Optional[ChainConfig] = None,
        energy: Optional[EnergyParams] = None,
        performance_mode: str = "paper",
    ) -> None:
        self.config = config or ChainConfig()
        self.mapper = LayerMapper(self.config)
        self.performance_model = PerformanceModel(self.config, mode=performance_mode)
        self.traffic_model = TrafficModel(self.config)
        self.power_model = PowerModel(
            config=self.config,
            energy=energy,
            performance=self.performance_model,
            traffic=self.traffic_model,
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def paper_configuration(cls, calibrate_power_to: Optional[Network] = None,
                            batch: int = 4) -> "ChainNN":
        """The 576-PE, 700 MHz instantiation evaluated in the paper.

        When ``calibrate_power_to`` is given, the power model's unit energies
        are fitted so the Fig. 10 breakdown is reproduced exactly for that
        network (see :meth:`repro.energy.power.PowerModel.calibrated_to_paper`).
        """
        chip = cls(ChainConfig.paper_default())
        if calibrate_power_to is not None:
            chip.power_model = chip.power_model.calibrated_to_paper(calibrate_power_to, batch)
        return chip

    # ------------------------------------------------------------------ #
    # headline numbers
    # ------------------------------------------------------------------ #
    @property
    def peak_gops(self) -> float:
        """Peak throughput (806.4 GOPS for the paper configuration)."""
        return self.config.peak_gops

    def utilization(self, kernel_size: int) -> float:
        """Spatial PE utilization for one kernel size (Table II)."""
        return self.mapper.chain.utilization(kernel_size).utilization

    # ------------------------------------------------------------------ #
    # running workloads
    # ------------------------------------------------------------------ #
    def run_layer(self, layer: ConvLayer, batch: int = 1) -> LayerResult:
        """Evaluate one convolutional layer."""
        mapping = self.mapper.map_layer(layer)
        performance = self.performance_model.layer_performance(layer, batch)
        traffic = self.traffic_model.layer_traffic(layer, batch)
        return LayerResult(layer=layer, mapping=mapping, performance=performance,
                           traffic=traffic)

    def run_network(self, network: Network, batch: int = 1) -> NetworkResult:
        """Evaluate every convolutional layer of a network."""
        layers = [self.run_layer(layer, batch) for layer in network.conv_layers]
        performance = self.performance_model.network_performance(network, batch)
        traffic = self.traffic_model.network_traffic(network, batch)
        power = self.power_model.network_power(network, batch)
        return NetworkResult(
            network=network,
            batch=batch,
            layers=layers,
            performance=performance,
            traffic=traffic,
            power=power,
        )

    def describe(self) -> str:
        """One-line description of the instantiation."""
        return self.config.describe()
