"""PE-utilization arithmetic for the 1D chain (Table II of the paper).

A chain of ``P`` PEs is cut into ``floor(P / K^2)`` systolic primitives for a
kernel of size ``K``; the PEs left over at the end of the chain idle.  The
*spatial* utilization reported in Table II is simply the fraction of PEs that
belong to a primitive.  (Temporal utilization — how busy an active PE is —
comes from the performance model.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.core.config import MAINSTREAM_KERNEL_SIZES
from repro.errors import MappingError
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class UtilizationEntry:
    """One row of Table II."""

    kernel_size: int
    pes_per_primitive: int
    active_primitives: int
    active_pes: int
    total_pes: int

    @property
    def utilization(self) -> float:
        """Fraction of the chain's PEs that are active (0..1)."""
        return self.active_pes / self.total_pes

    @property
    def idle_pes(self) -> int:
        """PEs left over at the end of the chain."""
        return self.total_pes - self.active_pes


def primitive_size(kernel_size: int) -> int:
    """Number of PEs a primitive needs for a ``K x K`` kernel (``K^2``)."""
    check_positive_int("kernel_size", kernel_size)
    return kernel_size * kernel_size


def active_primitives(num_pes: int, kernel_size: int) -> int:
    """How many complete primitives fit in a chain of ``num_pes`` PEs."""
    check_positive_int("num_pes", num_pes)
    size = primitive_size(kernel_size)
    if size > num_pes:
        raise MappingError(
            f"a {kernel_size}x{kernel_size} kernel needs {size} PEs but the chain has {num_pes}"
        )
    return num_pes // size


def utilization_entry(num_pes: int, kernel_size: int) -> UtilizationEntry:
    """Utilization of a ``num_pes`` chain for one kernel size."""
    size = primitive_size(kernel_size)
    primitives = active_primitives(num_pes, kernel_size)
    return UtilizationEntry(
        kernel_size=kernel_size,
        pes_per_primitive=size,
        active_primitives=primitives,
        active_pes=primitives * size,
        total_pes=num_pes,
    )


def utilization_table(
    num_pes: int = 576,
    kernel_sizes: Sequence[int] = MAINSTREAM_KERNEL_SIZES,
) -> Dict[int, UtilizationEntry]:
    """Reproduce Table II for an arbitrary chain length and kernel-size list."""
    return {k: utilization_entry(num_pes, k) for k in kernel_sizes}


def minimum_utilization(num_pes: int, kernel_sizes: Iterable[int]) -> float:
    """Worst-case spatial utilization over a set of kernel sizes.

    The paper's headline claim is "at least 84 %" for the mainstream kernel
    sizes on 576 PEs (the 11x11 row).
    """
    entries = [utilization_entry(num_pes, k) for k in kernel_sizes]
    if not entries:
        raise MappingError("kernel_sizes must not be empty")
    return min(entry.utilization for entry in entries)


def best_chain_lengths(
    kernel_sizes: Sequence[int] = MAINSTREAM_KERNEL_SIZES,
    low: int = 128,
    high: int = 1152,
    step: int = 16,
) -> Dict[int, float]:
    """Sweep chain lengths and report the worst-case utilization of each.

    Used by the design-space-exploration example to show why 576 PEs is a
    sweet spot (it is a multiple of 9 and 81 and nearly a multiple of 25/49).
    """
    results: Dict[int, float] = {}
    for num_pes in range(low, high + 1, step):
        if num_pes < max(primitive_size(k) for k in kernel_sizes):
            continue
        results[num_pes] = minimum_utilization(num_pes, kernel_sizes)
    return results
