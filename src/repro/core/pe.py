"""Dual-channel processing engine (Fig. 6 of the paper) — structural model.

Each PE holds:

* two ifmap channel registers (``OddIF`` / ``EvenIF``) that forward the two
  pixel streams to the next PE in the chain,
* a kMemory register file with the stationary kernel weights and an active
  weight register,
* a 16-bit fixed-point MAC,
* a two-stage partial-sum register pair toward the next PE.

Timing discipline (documented here because the paper leaves it implicit):
ifmap pixels advance one PE per cycle; partial sums advance one PE every two
cycles (two psum registers per PE).  With weights stored in column-major
window order this is the classical weight-stationary 1D systolic convolution
alignment: the partial sum injected into PE 0 at cycle ``c`` accumulates the
window whose column-scan starts at timestamp ``c``, PE ``q`` contributes its
product at cycle ``c + 2q``, and the finished sum leaves the last PE
``2(K^2-1)`` cycles after injection.  Steady-state throughput is one window
per cycle and the input bandwidth is at most two pixels per cycle — the
properties the paper's results rest on; only the constant fill latency
differs from the idealised ``K^2`` the paper quotes.

Values travelling the psum chain carry their window tag (the start
timestamp), which lets the primitive label each finished sum with the output
pixel it belongs to without a separate control path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hwmodel.fixed_point import FixedPointFormat
from repro.hwmodel.mac import MacUnit
from repro.hwmodel.memory import RegisterFile
from repro.hwmodel.mux import Mux
from repro.hwmodel.register import Register


@dataclass(frozen=True)
class TaggedPsum:
    """A partial sum travelling along the chain, tagged with its window identity."""

    value: int
    start_timestamp: int

    def accumulate(self, product: int) -> "TaggedPsum":
        """Return a new tagged psum with ``product`` added."""
        return TaggedPsum(value=self.value + product, start_timestamp=self.start_timestamp)


@dataclass(frozen=True)
class PEInputs:
    """Combinational inputs presented to a PE during one cycle."""

    even_pixel: Optional[int]
    odd_pixel: Optional[int]
    psum: Optional[TaggedPsum]
    channel_select: Optional[str]  # 'even', 'odd' or None (idle)


@dataclass(frozen=True)
class PEOutputs:
    """Combinational outputs of a PE during one cycle (before the clock edge)."""

    even_pixel: Optional[int]
    odd_pixel: Optional[int]
    psum: Optional[TaggedPsum]


class DualChannelPE:
    """One dual-channel PE of the chain."""

    def __init__(
        self,
        position: int,
        kmemory_depth: int = 256,
        operand_format: FixedPointFormat | None = None,
        name: Optional[str] = None,
    ) -> None:
        self.position = position
        self.name = name or f"pe{position}"
        self.operand_format = operand_format or FixedPointFormat(16, 8)
        self.kmemory = RegisterFile(depth=kmemory_depth, name=f"{self.name}.kMemory")
        self.mac = MacUnit(operand_format=self.operand_format, name=f"{self.name}.mac")
        self.channel_mux = Mux(num_inputs=2, name=f"{self.name}.mux")
        # channel registers toward the next PE
        self.even_reg = Register(reset_value=None, name=f"{self.name}.evenIF")
        self.odd_reg = Register(reset_value=None, name=f"{self.name}.oddIF")
        # two-stage psum delay toward the next PE
        self.psum_reg_a = Register(reset_value=None, name=f"{self.name}.psumA")
        self.psum_reg_b = Register(reset_value=None, name=f"{self.name}.psumB")
        # active weight register (loaded from kMemory)
        self.weight_reg = Register(reset_value=0, name=f"{self.name}.weight")
        self.idle_cycles = 0
        self.busy_cycles = 0

    # ------------------------------------------------------------------ #
    # weight handling
    # ------------------------------------------------------------------ #
    def load_weight(self, address: int, raw_value: int) -> None:
        """Write one stationary weight into the PE's kMemory slot ``address``."""
        self.kmemory.write(address, raw_value)

    def select_weight(self, address: int) -> None:
        """Read a kMemory slot into the active weight register (one kMemory access)."""
        self.weight_reg.set_next(self.kmemory.read(address))
        self.weight_reg.tick()

    @property
    def active_weight(self) -> int:
        """Raw value currently driving the multiplier."""
        return self.weight_reg.value

    # ------------------------------------------------------------------ #
    # per-cycle behaviour
    # ------------------------------------------------------------------ #
    def evaluate(self, inputs: PEInputs) -> PEOutputs:
        """Combinational evaluation for the current cycle.

        Returns the values this PE presents to the next PE *before* the clock
        edge: the channel registers' current contents and the second psum
        register's current contents, plus — packed in the returned psum of a
        separate field — nothing: the freshly computed psum is staged
        internally and only becomes visible downstream after two edges.
        """
        # values visible downstream this cycle (registered last cycles)
        downstream = PEOutputs(
            even_pixel=self.even_reg.value,
            odd_pixel=self.odd_reg.value,
            psum=self.psum_reg_b.value,
        )

        # stage channel registers for the next cycle
        self.even_reg.set_next(inputs.even_pixel)
        self.odd_reg.set_next(inputs.odd_pixel)

        # MAC: consume the selected pixel and the incoming psum
        new_psum: Optional[TaggedPsum] = None
        if inputs.psum is not None and inputs.channel_select is not None:
            pixel = self.channel_mux.select(
                (inputs.even_pixel, inputs.odd_pixel),
                0 if inputs.channel_select == "even" else 1,
            )
            if pixel is not None:
                product_psum = self.mac.compute(pixel, self.weight_reg.value, inputs.psum.value)
                new_psum = TaggedPsum(value=product_psum,
                                      start_timestamp=inputs.psum.start_timestamp)
                self.busy_cycles += 1
            else:
                # The scheduled pixel is absent (stripe edge): forward the
                # psum unchanged so downstream tagging stays consistent; the
                # window will be discarded as invalid at the drain.
                new_psum = inputs.psum
                self.idle_cycles += 1
        else:
            self.idle_cycles += 1

        # stage the two-cycle psum delay
        self.psum_reg_a.set_next(new_psum)
        self.psum_reg_b.set_next(self.psum_reg_a.value)
        return downstream

    def tick(self) -> None:
        """Latch all staged registers (call once per cycle after evaluate)."""
        self.even_reg.tick()
        self.odd_reg.tick()
        self.psum_reg_a.tick()
        self.psum_reg_b.tick()

    def reset_datapath(self) -> None:
        """Clear pipeline registers (weights and kMemory survive)."""
        for reg in (self.even_reg, self.odd_reg, self.psum_reg_a, self.psum_reg_b):
            reg.reset()

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def mac_count(self) -> int:
        """MAC operations performed so far."""
        return self.mac.mac_count

    @property
    def kmemory_reads(self) -> int:
        """kMemory read accesses performed so far."""
        return self.kmemory.counters.reads
