"""Column-wise scan input pattern (Sec. IV.C of the paper).

A *stripe* is a band of up to ``2K-1`` consecutive ifmap rows out of which up
to ``K`` adjacent ofmap rows are computed simultaneously.  Pixels of the
stripe are streamed column by column; within a column the pixels receive the
timestamps shown in Fig. 5(b):

    ``ts(row, col) = K * col + row + 1``

so adjacent columns overlap by ``K-1`` timestamps and, in steady state, two
pixels (one from an even-index column, one from an odd-index column) share
every timestamp — which is exactly why the PE has two ifmap channels (OddIF /
EvenIF in the paper's 1-based column naming; this module uses 0-based column
parity).

With kernels stored in column-major order inside the primitive, the pixels
with timestamps ``[t - K^2 + 1, t]`` form the convolution window that ends at
``t``; every cycle ``t >= K^2`` therefore completes one output as long as the
window's starting row is one of the stripe's output rows.  A full stripe
(``2K-1`` rows) keeps every cycle useful — 100 % utilization; a shorter final
stripe produces fewer valid windows per column, which is the honest hardware
behaviour (the analytical model optionally idealises this away the way the
paper's numbers do).

The helpers here compute the timestamp mapping, its inverse (which window
ends at a given cycle), the per-PE channel-parity selection, and generate the
full delivery schedule used by the cycle-level simulator's input feeder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PixelDelivery:
    """Pixels delivered by the two ifmap channels during one timestamp slot.

    ``even`` / ``odd`` are ``(row_in_stripe, col)`` coordinates (0-based
    column parity) or ``None`` when the respective channel is idle at that
    timestamp (stripe edges).
    """

    timestamp: int
    even: Optional[Tuple[int, int]]
    odd: Optional[Tuple[int, int]]

    @property
    def pixel_count(self) -> int:
        """Number of pixels delivered in this slot (0, 1 or 2)."""
        return int(self.odd is not None) + int(self.even is not None)


@dataclass(frozen=True)
class WindowTag:
    """Identity of the convolution window completing at a given timestamp."""

    timestamp: int
    out_row_in_stripe: int
    out_col: int
    valid: bool


class ColumnScanSchedule:
    """Scan schedule for one stripe of one ifmap channel.

    Parameters
    ----------
    kernel_size:
        ``K``.  The timestamp period per column is always ``K`` so that at
        most two pixels ever share a timestamp (the dual-channel invariant).
    width:
        Number of ifmap columns in the (padded) stripe.
    stripe_rows:
        Rows in the stripe: ``2K-1`` for a full stripe (the default); the
        final stripe of a feature map may have as few as ``K`` rows, in which
        case it produces ``stripe_rows - K + 1`` output rows.
    """

    def __init__(self, kernel_size: int, width: int, stripe_rows: Optional[int] = None) -> None:
        if kernel_size < 1:
            raise ConfigurationError(f"kernel_size must be >= 1, got {kernel_size}")
        if width < kernel_size:
            raise ConfigurationError(
                f"stripe width {width} is smaller than the kernel {kernel_size}"
            )
        self.kernel_size = kernel_size
        full_rows = 2 * kernel_size - 1
        self.stripe_rows = stripe_rows if stripe_rows is not None else full_rows
        if not (kernel_size <= self.stripe_rows <= full_rows):
            raise ConfigurationError(
                f"stripe_rows must be in [{kernel_size}, {full_rows}], got {self.stripe_rows}"
            )
        self.width = width
        #: output rows produced by this stripe
        self.out_rows = self.stripe_rows - kernel_size + 1

    # ------------------------------------------------------------------ #
    # timestamp arithmetic
    # ------------------------------------------------------------------ #
    def timestamp(self, row: int, col: int) -> int:
        """Timestamp at which pixel ``(row, col)`` of the stripe is streamed in."""
        if not (0 <= row < self.stripe_rows):
            raise ConfigurationError(f"row {row} outside stripe of {self.stripe_rows} rows")
        if not (0 <= col < self.width):
            raise ConfigurationError(f"col {col} outside stripe of width {self.width}")
        return self.kernel_size * col + row + 1

    @property
    def total_timestamps(self) -> int:
        """Largest timestamp used by the stripe (also the streaming cycle count)."""
        return self.timestamp(self.stripe_rows - 1, self.width - 1)

    @property
    def fill_latency(self) -> int:
        """Timestamp of the first completed window (``K^2``)."""
        return self.kernel_size * self.kernel_size

    def pixels_at(self, timestamp: int) -> List[Tuple[int, int]]:
        """All stripe pixels sharing ``timestamp`` (at most two)."""
        if timestamp < 1 or timestamp > self.total_timestamps:
            return []
        k = self.kernel_size
        pixels = []
        # row = timestamp - 1 - K * col; only the two nearest columns can
        # yield a row inside [0, stripe_rows).
        min_col = max(0, (timestamp - self.stripe_rows) // k)
        max_col = min(self.width - 1, (timestamp - 1) // k)
        for col in range(min_col, max_col + 1):
            row = timestamp - 1 - k * col
            if 0 <= row < self.stripe_rows:
                pixels.append((row, col))
        return pixels

    def delivery_at(self, timestamp: int) -> PixelDelivery:
        """Channel assignment (even/odd column parity) of the pixels at ``timestamp``."""
        even = None
        odd = None
        for row, col in self.pixels_at(timestamp):
            if col % 2 == 0:
                even = (row, col)
            else:
                odd = (row, col)
        return PixelDelivery(timestamp=timestamp, even=even, odd=odd)

    def deliveries(self) -> Iterator[PixelDelivery]:
        """Iterate the full delivery schedule of the stripe in timestamp order."""
        for timestamp in range(1, self.total_timestamps + 1):
            yield self.delivery_at(timestamp)

    # ------------------------------------------------------------------ #
    # window arithmetic
    # ------------------------------------------------------------------ #
    def window_ending_at(self, timestamp: int) -> WindowTag:
        """The convolution window whose last pixel has the given timestamp.

        The window is *valid* when its starting row is one of the stripe's
        output rows and its starting column leaves room for ``K`` columns.
        """
        k = self.kernel_size
        start_ts = timestamp - k * k + 1
        if start_ts < 1:
            return WindowTag(timestamp, -1, -1, valid=False)
        out_col = (start_ts - 1) // k
        out_row = (start_ts - 1) % k
        valid = out_row < self.out_rows and out_col + k <= self.width
        if not valid:
            return WindowTag(timestamp, -1, -1, valid=False)
        return WindowTag(timestamp, out_row, out_col, valid=True)

    def window_pixels(self, out_row: int, out_col: int) -> List[Tuple[int, int]]:
        """Window pixels in column-major (scan) order for a given output position."""
        k = self.kernel_size
        if not (0 <= out_row < self.out_rows):
            raise ConfigurationError(f"out_row {out_row} outside stripe outputs")
        if not (0 <= out_col <= self.width - k):
            raise ConfigurationError(f"out_col {out_col} leaves no room for the kernel")
        return [(out_row + i, out_col + j) for j in range(k) for i in range(k)]

    def valid_windows(self) -> List[WindowTag]:
        """All valid windows of the stripe, in completion (timestamp) order."""
        windows = []
        for timestamp in range(self.fill_latency, self.total_timestamps + 1):
            tag = self.window_ending_at(timestamp)
            if tag.valid:
                windows.append(tag)
        return windows

    # ------------------------------------------------------------------ #
    # PE-level selection
    # ------------------------------------------------------------------ #
    def pe_column(self, pe_index: int, timestamp: int) -> Optional[int]:
        """Absolute column of the pixel PE ``pe_index`` consumes at ``timestamp``.

        PE ``q`` (0-based position inside the primitive, which is also the
        column-major index of its stationary weight) serves, at timestamp
        ``u``, the window whose scan started at timestamp ``u - q``; its
        in-window column offset is ``q // K``.  Returns ``None`` while the
        pipeline is still filling (no window has reached this PE yet).
        """
        k = self.kernel_size
        if not (0 <= pe_index < k * k):
            raise ConfigurationError(f"pe_index {pe_index} outside primitive of {k * k} PEs")
        start_ts = timestamp - pe_index
        if start_ts < 1:
            return None
        window_col = (start_ts - 1) // k
        return window_col + pe_index // k

    def pe_channel_select(self, pe_index: int, timestamp: int) -> Optional[str]:
        """Which ifmap channel ('even'/'odd' column parity) the PE taps at ``timestamp``."""
        column = self.pe_column(pe_index, timestamp)
        if column is None:
            return None
        return "even" if column % 2 == 0 else "odd"

    # ------------------------------------------------------------------ #
    # bandwidth statistics
    # ------------------------------------------------------------------ #
    def pixels_streamed(self) -> int:
        """Total pixels delivered over the stripe (= stripe_rows * width)."""
        return self.stripe_rows * self.width

    def peak_pixels_per_cycle(self) -> int:
        """Maximum pixels delivered in any single timestamp slot."""
        return max(delivery.pixel_count for delivery in self.deliveries())

    def average_pixels_per_cycle(self) -> float:
        """Average delivery rate over the stripe."""
        return self.pixels_streamed() / self.total_timestamps

    def utilization(self) -> float:
        """Fraction of streaming cycles that complete a valid window."""
        return len(self.valid_windows()) / self.total_timestamps


def stripe_plan(out_height: int, kernel_size: int,
                stripe_height: Optional[int] = None) -> List[int]:
    """Split ``out_height`` output rows into stripes of at most ``stripe_height``.

    ``stripe_height`` defaults to ``K`` (the paper's full-stripe mapping: a
    ``2K-1``-row input band computing ``K`` ofmap rows); the mapping-search
    subsystem explores shorter stripes, which remain legal as long as
    ``1 <= stripe_height <= K`` (the column-scan cadence fixes the input band
    at ``stripe_height + K - 1 <= 2K - 1`` rows).  Returns the list of
    output-row counts per stripe (all ``stripe_height`` except a
    possibly-shorter final stripe), e.g. ``stripe_plan(13, 3) == [3, 3, 3, 3, 1]``.
    """
    if out_height < 1:
        raise ConfigurationError(f"out_height must be >= 1, got {out_height}")
    if kernel_size < 1:
        raise ConfigurationError(f"kernel_size must be >= 1, got {kernel_size}")
    height = kernel_size if stripe_height is None else stripe_height
    if not (1 <= height <= kernel_size):
        raise ConfigurationError(
            f"stripe_height must be in [1, {kernel_size}], got {height}"
        )
    full, remainder = divmod(out_height, height)
    plan = [height] * full
    if remainder:
        plan.append(remainder)
    return plan
