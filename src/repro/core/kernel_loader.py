"""Kernel-loading path: distributing stationary weights into the PEs' kMemory.

The paper loads kernels once per batch at one weight per cycle (the rate its
per-layer kernel-load times imply) and sizes kMemory at 256 weights per PE.
This module models the loading path explicitly:

* the *placement* of a layer's kernels over the chain — which PE stores which
  weights at which kMemory addresses, per pass of channel pairs;
* the number of load cycles and kMemory writes (which feed the traffic and
  power models);
* whether the layer's working set fits kMemory for a whole batch or has to be
  streamed in chunks, and how many chunks ("refills") are needed — a capacity
  analysis the mapper exposes as a single number but which is useful to see
  laid out per layer when exploring kMemory sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cnn.layer import ConvLayer
from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.core.mapper import LayerMapper
from repro.errors import CapacityError


@dataclass(frozen=True)
class KernelPlacement:
    """Where one channel pair's kernel plane lives in the chain."""

    pass_index: int          # which sequential pass over the primitives
    primitive_index: int     # which primitive executes the pair
    ofmap_channel: int
    ifmap_channel: int
    kmemory_slot: int        # per-PE kMemory address used by this pass


@dataclass(frozen=True)
class LayerLoadPlan:
    """Kernel-loading plan of one layer."""

    layer: ConvLayer
    placements: List[KernelPlacement]
    weights_per_pe: int
    kmemory_capacity: int
    load_cycles: int
    kmemory_write_words: int

    @property
    def refills(self) -> int:
        """How many times kMemory must be (re)filled to cover the layer."""
        if self.weights_per_pe == 0:
            return 1
        return -(-self.weights_per_pe // self.kmemory_capacity)

    @property
    def fits_in_kmemory(self) -> bool:
        """True when every pass's weights are resident simultaneously."""
        return self.refills == 1

    @property
    def kmemory_occupancy(self) -> float:
        """Fraction of the per-PE kMemory the layer needs (may exceed 1)."""
        return self.weights_per_pe / self.kmemory_capacity

    def placements_for_primitive(self, primitive_index: int) -> List[KernelPlacement]:
        """The channel pairs a given primitive executes, in pass order."""
        return [p for p in self.placements if p.primitive_index == primitive_index]


class KernelLoader:
    """Builds :class:`LayerLoadPlan` objects for a chain configuration."""

    def __init__(self, config: Optional[ChainConfig] = None) -> None:
        self.config = config or ChainConfig()
        self.mapper = LayerMapper(self.config)

    def plan_layer(self, layer: ConvLayer, max_placements: Optional[int] = 100_000
                   ) -> LayerLoadPlan:
        """Plan the kernel distribution of one layer.

        ``max_placements`` bounds the explicit placement list for very large
        layers (the counts are exact regardless); pass ``None`` to enumerate
        everything.
        """
        mapping = self.mapper.map_layer(layer)
        primitives = mapping.active_primitives
        placements: List[KernelPlacement] = []

        pair_index = 0
        for group in range(layer.groups):
            for m_local in range(layer.out_channels_per_group):
                m = group * layer.out_channels_per_group + m_local
                for c_local in range(layer.in_channels_per_group):
                    c = group * layer.in_channels_per_group + c_local
                    pass_index = pair_index // primitives
                    primitive_index = pair_index % primitives
                    if max_placements is None or len(placements) < max_placements:
                        placements.append(KernelPlacement(
                            pass_index=pass_index,
                            primitive_index=primitive_index,
                            ofmap_channel=m,
                            ifmap_channel=c,
                            kmemory_slot=pass_index % self.config.kmemory_words_per_pe,
                        ))
                    pair_index += 1

        return LayerLoadPlan(
            layer=layer,
            placements=placements,
            weights_per_pe=mapping.weights_per_pe,
            kmemory_capacity=self.config.kmemory_words_per_pe,
            load_cycles=layer.weight_count,
            kmemory_write_words=layer.weight_count,
        )

    def plan_network(self, network: Network) -> Dict[str, LayerLoadPlan]:
        """Plan every convolutional layer of a network."""
        return {layer.name: self.plan_layer(layer) for layer in network.conv_layers}

    def network_kmemory_requirement(self, network: Network) -> int:
        """Largest per-PE weight count any layer needs (for kMemory sizing studies)."""
        return max(self.plan_layer(layer).weights_per_pe for layer in network.conv_layers)

    def validate_against_capacity(self, network: Network, strict: bool = False) -> Dict[str, int]:
        """Refill counts per layer; with ``strict`` raise if any layer needs refills."""
        refills = {layer.name: self.plan_layer(layer).refills for layer in network.conv_layers}
        if strict:
            offenders = {name: count for name, count in refills.items() if count > 1}
            if offenders:
                raise CapacityError(
                    f"layers exceeding the {self.config.kmemory_words_per_pe}-entry kMemory: "
                    f"{offenders}"
                )
        return refills
