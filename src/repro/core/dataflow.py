"""The Fig. 7 dataflow: loop nest, tiling and reuse factors.

The paper adopts the memory-efficient dataflow of CNN-MERP [7] adapted to the
column-wise scan: the outer loops tile the ofmap channels (``Tm``) and the
ifmap rows (``Th``); the ``ParaTile`` level is the unroll over the active
primitives; ``iMemory``/``oMemory`` buffer the inner-tile working set so that
DRAM sees each operand as few times as possible.

This module picks the tile sizes from the memory capacities and produces the
iteration counts and reuse factors the traffic model (Table IV) needs.  The
loop structure itself is also exposed as a generator so examples and tests
can inspect the exact iteration order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.cnn.layer import ConvLayer
from repro.core.config import ChainConfig
from repro.errors import CapacityError


@dataclass(frozen=True)
class TileConfig:
    """Tile sizes of the Fig. 7 loop nest for one layer."""

    layer: ConvLayer
    tm: int            # ofmap channels per outer tile (ParaTile width)
    th: int            # ofmap rows per inner tile
    stripe_rows: int   # ifmap rows needed per inner tile (Th output rows)

    @property
    def outer_tiles(self) -> int:
        """Number of ofmap-channel tiles (`OuterTile` iterations)."""
        return math.ceil(self.layer.out_channels / self.tm)

    @property
    def inner_tiles(self) -> int:
        """Number of row tiles per image and ofmap tile (`InnerTile` iterations)."""
        return math.ceil(self.layer.out_height / self.th)

    @property
    def ofmap_tile_bytes(self) -> int:
        """oMemory bytes needed to hold one inner tile of Tm ofmap channels."""
        return self.tm * self.th * self.layer.out_width * 2

    @property
    def ifmap_tile_bytes(self) -> int:
        """iMemory bytes needed to hold the ifmap rows feeding one inner tile."""
        return self.stripe_rows * self.layer.padded_width * 2

    def describe(self) -> str:
        """Human readable tile summary."""
        return (
            f"{self.layer.name}: Tm={self.tm}, Th={self.th} "
            f"({self.outer_tiles} outer x {self.inner_tiles} inner tiles), "
            f"iMem tile {self.ifmap_tile_bytes} B, oMem tile {self.ofmap_tile_bytes} B"
        )


@dataclass(frozen=True)
class LoopIteration:
    """One innermost iteration of the Fig. 7 loop nest."""

    outer_tile: int      # index over ofmap-channel tiles
    image: int           # index inside the batch
    inner_tile: int      # index over row tiles
    ofmap_channel: int   # m
    ifmap_channel: int   # c


class DataflowPlanner:
    """Chooses Fig. 7 tile sizes for a layer under the configured memory sizes."""

    def __init__(self, config: ChainConfig | None = None) -> None:
        self.config = config or ChainConfig()

    def plan(self, layer: ConvLayer, active_primitives: int) -> TileConfig:
        """Pick ``Tm`` and ``Th`` for a layer.

        ``Tm`` is bounded by the number of active primitives (the ParaTile
        unroll: each primitive works on a different ofmap channel of the tile
        so the ifmap stream is shared) and by the oMemory capacity;
        ``Th`` (output rows per inner tile) is bounded by what a stripe needs
        from iMemory.
        """
        word = self.config.word_bytes
        out_row_bytes = layer.out_width * word

        # Th: start from one stripe's worth of output rows (K) and shrink if
        # even a single stripe of ifmaps does not fit iMemory.  The chain
        # always buffers at most a 2K-1-row (stride-1) stripe per channel —
        # strided layers stream at stride-1 cadence and discard off-grid
        # outputs — so the buffered rows are th + K - 1 regardless of stride.
        th = min(layer.kernel_size, layer.out_height)
        while th > 1:
            stripe_rows = th + layer.kernel_size - 1
            if stripe_rows * layer.padded_width * word <= self.config.imemory_bytes:
                break
            th -= 1
        stripe_rows = th + layer.kernel_size - 1
        if stripe_rows * layer.padded_width * word > self.config.imemory_bytes:
            raise CapacityError(
                f"{layer.name}: even a single-row tile needs "
                f"{stripe_rows * layer.padded_width * word} B of iMemory "
                f"(capacity {self.config.imemory_bytes} B)"
            )

        # Tm: as many ofmap channels as both the primitives and oMemory allow.
        tm_capacity = max(1, self.config.omemory_bytes // max(1, th * out_row_bytes))
        tm = max(1, min(layer.out_channels, active_primitives, tm_capacity))
        return TileConfig(layer=layer, tm=tm, th=th, stripe_rows=stripe_rows)

    def iterations(self, tile: TileConfig, batch: int = 1) -> Iterator[LoopIteration]:
        """Generate the Fig. 7 loop nest iteration order (innermost = ifmap channel)."""
        layer = tile.layer
        for outer in range(tile.outer_tiles):
            for image in range(batch):
                for inner in range(tile.inner_tiles):
                    m_lo = outer * tile.tm
                    m_hi = min(layer.out_channels, m_lo + tile.tm)
                    for m in range(m_lo, m_hi):
                        for c in range(layer.in_channels_per_group):
                            yield LoopIteration(
                                outer_tile=outer,
                                image=image,
                                inner_tile=inner,
                                ofmap_channel=m,
                                ifmap_channel=c,
                            )

    def reuse_factors(self, tile: TileConfig) -> Tuple[float, float, float]:
        """Return (ifmap_reuse, weight_reuse, psum_reuse) inside the chain.

        * ifmap reuse: each streamed pixel is used by ``K^2`` MACs on average
          inside a primitive and shared by the ``Tm`` primitives of the tile.
        * weight reuse: a stationary weight serves every output pixel of the
          stripe pattern (``K * E`` uses between kMemory reads).
        * psum reuse: partial sums stay inside the primitive for ``K^2``
          accumulations before reaching oMemory.
        """
        layer = tile.layer
        k = layer.kernel_size
        ifmap_reuse = float(k * k * tile.tm) * (k / (2 * k - 1))
        weight_reuse = float(k * layer.out_width)
        psum_reuse = float(k * k)
        return ifmap_reuse, weight_reuse, psum_reuse
