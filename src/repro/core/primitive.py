"""1D systolic primitive: a group of ``K^2`` chained dual-channel PEs (Fig. 4).

The primitive computes 2D ``K x K`` convolutions over one ifmap plane with the
kernel weights held stationary (one weight per PE, in column-major window
order) while the ifmap pixels stream through the two channel register chains
in column-wise scan order.  Partial sums ripple along the PEs and emerge from
the last PE tagged with the window they belong to.

The model is cycle-accurate at the register level: each call to
:meth:`SystolicPrimitive.step` is one clock cycle.  :meth:`run_stripe` drives
a whole stripe through the primitive and collects the valid outputs, which is
the unit of work the cycle-level layer simulator composes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.pe import DualChannelPE, PEInputs, TaggedPsum
from repro.core.scan import ColumnScanSchedule
from repro.errors import MappingError, SimulationError
from repro.hwmodel.fixed_point import FixedPointFormat


@dataclass(frozen=True)
class PrimitiveOutput:
    """One finished window sum leaving the primitive."""

    out_row_in_stripe: int
    out_col: int
    raw_value: int
    completion_cycle: int


@dataclass
class StripeRunResult:
    """Everything produced by running one stripe through the primitive."""

    outputs: List[PrimitiveOutput]
    cycles: int
    pixels_streamed: int
    macs: int

    def as_array(self, out_rows: int, out_cols: int) -> np.ndarray:
        """Assemble the outputs into a dense ``(out_rows, out_cols)`` array of raw sums."""
        result = np.zeros((out_rows, out_cols), dtype=np.int64)
        for output in self.outputs:
            if output.out_row_in_stripe < out_rows and output.out_col < out_cols:
                result[output.out_row_in_stripe, output.out_col] = output.raw_value
        return result


class SystolicPrimitive:
    """A ``K^2``-PE weight-stationary systolic convolution primitive."""

    def __init__(
        self,
        kernel_size: int,
        kmemory_depth: int = 256,
        operand_format: FixedPointFormat | None = None,
        name: str = "primitive",
    ) -> None:
        if kernel_size < 1:
            raise MappingError(f"kernel_size must be >= 1, got {kernel_size}")
        self.kernel_size = kernel_size
        self.name = name
        self.operand_format = operand_format or FixedPointFormat(16, 8)
        self.num_pes = kernel_size * kernel_size
        self.pes: List[DualChannelPE] = [
            DualChannelPE(
                position=q,
                kmemory_depth=kmemory_depth,
                operand_format=self.operand_format,
                name=f"{name}.pe{q}",
            )
            for q in range(self.num_pes)
        ]
        self.cycle = 0

    # ------------------------------------------------------------------ #
    # kernel handling
    # ------------------------------------------------------------------ #
    def load_kernel(self, kernel_raw: np.ndarray, slot: int = 0) -> int:
        """Load a ``K x K`` kernel (raw fixed-point ints) into kMemory slot ``slot``.

        PE ``q`` receives the weight at window position ``(q % K, q // K)``
        (column-major), matching the column-wise pixel scan.  Returns the
        number of load cycles consumed (one weight per cycle, the rate the
        paper's kernel-load times imply).
        """
        kernel = np.asarray(kernel_raw)
        if kernel.shape != (self.kernel_size, self.kernel_size):
            raise MappingError(
                f"{self.name}: kernel shape {kernel.shape} does not match "
                f"K={self.kernel_size}"
            )
        for q, pe in enumerate(self.pes):
            row = q % self.kernel_size
            col = q // self.kernel_size
            pe.load_weight(slot, int(kernel[row, col]))
        return self.num_pes

    def select_kernel(self, slot: int = 0) -> None:
        """Make the kernel stored in ``slot`` the active weights of every PE."""
        for pe in self.pes:
            pe.select_weight(slot)

    # ------------------------------------------------------------------ #
    # cycle-level operation
    # ------------------------------------------------------------------ #
    def reset_datapath(self) -> None:
        """Flush channel and psum registers between stripes (weights survive)."""
        for pe in self.pes:
            pe.reset_datapath()
        self.cycle = 0

    def step(
        self,
        even_pixel: Optional[int],
        odd_pixel: Optional[int],
        inject_window: bool,
        schedule: ColumnScanSchedule,
    ) -> Optional[TaggedPsum]:
        """Advance the primitive by one clock cycle.

        Parameters
        ----------
        even_pixel / odd_pixel:
            Raw pixel values presented on the two ifmap channels this cycle
            (``None`` when a channel is idle).
        inject_window:
            Whether a fresh partial sum (a new window) is injected into the
            first PE this cycle.
        schedule:
            The stripe's scan schedule — used only to derive each PE's
            channel-parity selection from the window tag it is serving.

        Returns the tagged partial sum leaving the last PE this cycle (or
        ``None`` while the pipeline is still filling).
        """
        self.cycle += 1
        timestamp = self.cycle
        k = self.kernel_size

        upstream_even: Optional[int] = even_pixel
        upstream_odd: Optional[int] = odd_pixel
        upstream_psum: Optional[TaggedPsum] = (
            TaggedPsum(value=0, start_timestamp=timestamp) if inject_window else None
        )

        emerging: Optional[TaggedPsum] = None
        for q, pe in enumerate(self.pes):
            select: Optional[str] = None
            if upstream_psum is not None:
                window_col = (upstream_psum.start_timestamp - 1) // k
                column = window_col + q // k
                select = "even" if column % 2 == 0 else "odd"
            outputs = pe.evaluate(
                PEInputs(
                    even_pixel=upstream_even,
                    odd_pixel=upstream_odd,
                    psum=upstream_psum,
                    channel_select=select,
                )
            )
            if q == self.num_pes - 1:
                emerging = outputs.psum
            upstream_even = outputs.even_pixel
            upstream_odd = outputs.odd_pixel
            upstream_psum = outputs.psum

        for pe in self.pes:
            pe.tick()
        return emerging

    def drain_latency(self) -> int:
        """Cycles needed after the last injection for every window to emerge."""
        # a window injected at cycle c finishes its last MAC at c + 2(K^2 - 1)
        # and becomes visible downstream of the last PE two cycles later.
        return 2 * self.num_pes + 2

    def run_stripe(
        self,
        stripe: np.ndarray,
        stripe_rows: Optional[int] = None,
    ) -> StripeRunResult:
        """Stream one stripe (2D raw-int array) through the primitive.

        ``stripe`` has shape ``(rows, width)`` with ``K <= rows <= 2K-1``.
        Returns the valid window sums together with the cycle count actually
        spent (streaming plus drain).
        """
        data = np.asarray(stripe)
        if data.ndim != 2:
            raise SimulationError(f"{self.name}: stripe must be 2D, got shape {data.shape}")
        rows, width = data.shape
        if stripe_rows is not None and stripe_rows != rows:
            raise SimulationError(
                f"{self.name}: stripe_rows={stripe_rows} does not match array rows={rows}"
            )
        schedule = ColumnScanSchedule(self.kernel_size, width, stripe_rows=rows)
        self.reset_datapath()

        macs_before = self.total_macs
        outputs: List[PrimitiveOutput] = []
        total_stream = schedule.total_timestamps
        total_cycles = total_stream + self.drain_latency()

        for cycle in range(1, total_cycles + 1):
            if cycle <= total_stream:
                delivery = schedule.delivery_at(cycle)
                even_pixel = int(data[delivery.even]) if delivery.even is not None else None
                odd_pixel = int(data[delivery.odd]) if delivery.odd is not None else None
                inject = True
            else:
                even_pixel = None
                odd_pixel = None
                inject = False
            emerging = self.step(even_pixel, odd_pixel, inject, schedule)
            if emerging is None:
                continue
            tag = schedule.window_ending_at(
                emerging.start_timestamp + self.num_pes - 1
            )
            if tag.valid:
                outputs.append(
                    PrimitiveOutput(
                        out_row_in_stripe=tag.out_row_in_stripe,
                        out_col=tag.out_col,
                        raw_value=emerging.value,
                        completion_cycle=cycle,
                    )
                )

        return StripeRunResult(
            outputs=outputs,
            cycles=total_cycles,
            pixels_streamed=schedule.pixels_streamed(),
            macs=self.total_macs - macs_before,
        )

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def total_macs(self) -> int:
        """MACs performed by all PEs of the primitive so far."""
        return sum(pe.mac_count for pe in self.pes)

    @property
    def kmemory_reads(self) -> int:
        """kMemory reads performed by all PEs so far."""
        return sum(pe.kmemory_reads for pe in self.pes)

    def weight_snapshot(self) -> Dict[int, int]:
        """Active weight of each PE, keyed by PE position (for tests/debug)."""
        return {q: pe.active_weight for q, pe in enumerate(self.pes)}
