"""Finite-state-machine controller of the chain (Sec. III.B).

The paper's execution procedure is: (1) initialise the FSM with the layer's
CNN parameters, (2) load the kernels into the chain, (3) stream the ifmaps
and collect results.  The controller below implements that sequencing for the
models in this library: it tracks the current phase, counts the cycles spent
in each phase and enforces legal transitions.  Both the analytical
accelerator facade and the cycle-level simulator drive it, which keeps their
phase accounting consistent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.mapper import LayerMapping
from repro.errors import SimulationError


class Phase(str, enum.Enum):
    """Controller phases."""

    IDLE = "idle"
    CONFIGURE = "configure"
    LOAD_KERNEL = "load_kernel"
    STREAM = "stream"
    DRAIN = "drain"


#: legal phase transitions
_TRANSITIONS = {
    Phase.IDLE: {Phase.CONFIGURE},
    Phase.CONFIGURE: {Phase.LOAD_KERNEL},
    Phase.LOAD_KERNEL: {Phase.STREAM},
    Phase.STREAM: {Phase.DRAIN, Phase.STREAM, Phase.LOAD_KERNEL},
    Phase.DRAIN: {Phase.IDLE, Phase.LOAD_KERNEL, Phase.STREAM},
}


@dataclass
class PhaseLog:
    """Cycle counts accumulated per phase."""

    cycles: Dict[str, int] = field(default_factory=lambda: {phase.value: 0 for phase in Phase})

    def add(self, phase: Phase, cycles: int) -> None:
        """Accumulate cycles spent in a phase."""
        if cycles < 0:
            raise SimulationError(f"cannot log negative cycles ({cycles}) for {phase}")
        self.cycles[phase.value] += cycles

    @property
    def total(self) -> int:
        """Total logged cycles across all phases."""
        return sum(self.cycles.values())

    @property
    def busy(self) -> int:
        """Cycles in which the chain is doing useful work (kernel load + stream + drain)."""
        return (
            self.cycles[Phase.LOAD_KERNEL.value]
            + self.cycles[Phase.STREAM.value]
            + self.cycles[Phase.DRAIN.value]
        )


class ChainController:
    """The FSM that sequences kernel loading and ifmap streaming."""

    def __init__(self) -> None:
        self.phase = Phase.IDLE
        self.log = PhaseLog()
        self.current_mapping: Optional[LayerMapping] = None
        self.layers_completed = 0

    # ------------------------------------------------------------------ #
    # transitions
    # ------------------------------------------------------------------ #
    def _goto(self, phase: Phase) -> None:
        if phase not in _TRANSITIONS[self.phase]:
            raise SimulationError(f"illegal controller transition {self.phase} -> {phase}")
        self.phase = phase

    def configure(self, mapping: LayerMapping) -> None:
        """Initialise the FSM for a new layer (paper step 1)."""
        self._goto(Phase.CONFIGURE)
        self.current_mapping = mapping
        self.log.add(Phase.CONFIGURE, 1)

    def load_kernels(self, cycles: Optional[int] = None) -> int:
        """Account for kernel loading (paper step 2).  Returns the cycles spent."""
        if self.current_mapping is None:
            raise SimulationError("configure() must be called before load_kernels()")
        self._goto(Phase.LOAD_KERNEL)
        spent = cycles if cycles is not None else self.current_mapping.kernel_load_cycles
        self.log.add(Phase.LOAD_KERNEL, spent)
        return spent

    def stream(self, cycles: int) -> None:
        """Account for ifmap streaming / convolution cycles (paper step 3)."""
        if self.phase not in (Phase.LOAD_KERNEL, Phase.STREAM, Phase.DRAIN):
            raise SimulationError(f"cannot stream from phase {self.phase}")
        self._goto(Phase.STREAM)
        self.log.add(Phase.STREAM, cycles)

    def drain(self, cycles: int) -> None:
        """Account for pipeline drain cycles at the end of a pass."""
        self._goto(Phase.DRAIN)
        self.log.add(Phase.DRAIN, cycles)

    def finish_layer(self) -> None:
        """Return to idle after a layer completes."""
        if self.phase not in (Phase.DRAIN, Phase.STREAM):
            raise SimulationError(f"cannot finish a layer from phase {self.phase}")
        if self.phase == Phase.STREAM:
            self._goto(Phase.DRAIN)
        self._goto(Phase.IDLE)
        self.layers_completed += 1
        self.current_mapping = None

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def busy_fraction(self) -> float:
        """Fraction of logged cycles spent doing useful work."""
        total = self.log.total
        return self.log.busy / total if total else 0.0

    def reset(self) -> None:
        """Return the controller to power-on state, clearing the log."""
        self.phase = Phase.IDLE
        self.log = PhaseLog()
        self.current_mapping = None
        self.layers_completed = 0
