"""The 1D chain: partitioning a row of PEs into systolic primitives (Fig. 3).

The chain itself is deliberately simple — that is the paper's point.  Given a
kernel size ``K`` the chain is cut into consecutive groups of ``K^2`` PEs;
each group gets a pair of primitive ports (input at its first PE, output at
its last PE).  This module captures that partitioning plus the bookkeeping
used by the performance, area and power models (how many primitives and PEs
are active, where the port PEs sit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import ChainConfig
from repro.core.utilization import UtilizationEntry, utilization_entry
from repro.errors import MappingError


@dataclass(frozen=True)
class PrimitiveSlot:
    """The chain positions occupied by one systolic primitive."""

    index: int
    first_pe: int
    last_pe: int

    @property
    def num_pes(self) -> int:
        """PEs in the primitive (``K^2``)."""
        return self.last_pe - self.first_pe + 1

    def contains(self, pe_position: int) -> bool:
        """True if the chain position belongs to this primitive."""
        return self.first_pe <= pe_position <= self.last_pe


@dataclass(frozen=True)
class ChainPartition:
    """A complete partitioning of the chain for one kernel size."""

    kernel_size: int
    total_pes: int
    slots: List[PrimitiveSlot]

    @property
    def active_pes(self) -> int:
        """PEs that belong to a primitive."""
        return sum(slot.num_pes for slot in self.slots)

    @property
    def idle_pes(self) -> int:
        """Left-over PEs at the end of the chain."""
        return self.total_pes - self.active_pes

    @property
    def num_primitives(self) -> int:
        """Number of active primitives."""
        return len(self.slots)

    @property
    def utilization(self) -> float:
        """Spatial PE utilization (Table II definition)."""
        return self.active_pes / self.total_pes

    def slot_of(self, pe_position: int) -> PrimitiveSlot | None:
        """The primitive a chain position belongs to, or ``None`` if idle."""
        if not (0 <= pe_position < self.total_pes):
            raise MappingError(
                f"PE position {pe_position} outside chain of {self.total_pes} PEs"
            )
        size = self.kernel_size * self.kernel_size
        index = pe_position // size
        if index < len(self.slots) and self.slots[index].contains(pe_position):
            return self.slots[index]
        return None


class PEChain:
    """The physical 1D chain of PEs described by a :class:`ChainConfig`."""

    def __init__(self, config: ChainConfig | None = None) -> None:
        self.config = config or ChainConfig()

    @property
    def num_pes(self) -> int:
        """Chain length."""
        return self.config.num_pes

    def partition(self, kernel_size: int) -> ChainPartition:
        """Cut the chain into ``K^2``-PE primitives for a given kernel size."""
        size = kernel_size * kernel_size
        if size > self.num_pes:
            raise MappingError(
                f"kernel {kernel_size}x{kernel_size} needs {size} PEs, chain has {self.num_pes}"
            )
        count = self.num_pes // size
        slots = [
            PrimitiveSlot(index=i, first_pe=i * size, last_pe=(i + 1) * size - 1)
            for i in range(count)
        ]
        return ChainPartition(kernel_size=kernel_size, total_pes=self.num_pes, slots=slots)

    def utilization(self, kernel_size: int) -> UtilizationEntry:
        """Table II entry for this chain and kernel size."""
        return utilization_entry(self.num_pes, kernel_size)

    def primitive_port_count(self, kernel_size: int) -> int:
        """Number of primitive input/output port pairs attached to the chain."""
        return self.partition(kernel_size).num_primitives

    def describe(self, kernel_size: int) -> str:
        """Human-readable partition summary."""
        partition = self.partition(kernel_size)
        return (
            f"{self.num_pes}-PE chain, K={kernel_size}: "
            f"{partition.num_primitives} primitives x {kernel_size * kernel_size} PEs = "
            f"{partition.active_pes} active PEs ({partition.utilization * 100:.1f} %)"
        )
