"""Chain-NN accelerator configuration.

The defaults reproduce the instantiation evaluated in the paper:

* 576 dual-channel PEs, each pipelined into three stages, 700 MHz;
* 16-bit fixed-point datapath;
* 352 KB of on-chip memory: 32 KB iMemory, 25 KB oMemory and 295 KB of
  kMemory distributed over the PEs (256 kernel weights per PE).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.hwmodel.clock import ClockDomain
from repro.utils.validation import check_positive_int

#: kernel sizes Table II reports; other sizes are still supported.
MAINSTREAM_KERNEL_SIZES = (3, 5, 7, 9, 11)

KIB = 1024


@dataclass(frozen=True)
class ChainConfig:
    """Static configuration of one Chain-NN instance.

    Attributes
    ----------
    num_pes:
        Number of PEs in the 1D chain (the paper's case study uses 576).
    clock:
        Clock domain; the paper's layout closes timing at 700 MHz.
    word_bits:
        Datapath width of ifmaps/weights (16-bit fixed point).
    pe_pipeline_stages:
        MAC-path pipeline depth inside each PE (3 in the paper).
    kmemory_words_per_pe:
        Kernel-weight capacity of the per-PE register file (256 words, i.e.
        295 KB over 576 PEs).
    imemory_bytes / omemory_bytes:
        On-chip ifmap / ofmap SRAM sizes (32 KB / 25 KB).
    dual_channel:
        True for the paper's dual-channel PE; False models the
        single-channel strawman of Fig. 5(a).
    ops_per_mac:
        Operations counted per MAC when reporting GOPS (2 = multiply + add).
    """

    num_pes: int = 576
    clock: ClockDomain = field(default_factory=lambda: ClockDomain(700e6))
    word_bits: int = 16
    pe_pipeline_stages: int = 3
    kmemory_words_per_pe: int = 256
    imemory_bytes: int = 32 * KIB
    omemory_bytes: int = 25 * KIB
    dual_channel: bool = True
    ops_per_mac: int = 2

    def __post_init__(self) -> None:
        check_positive_int("num_pes", self.num_pes)
        check_positive_int("word_bits", self.word_bits)
        check_positive_int("kmemory_words_per_pe", self.kmemory_words_per_pe)
        check_positive_int("imemory_bytes", self.imemory_bytes)
        check_positive_int("omemory_bytes", self.omemory_bytes)
        check_positive_int("ops_per_mac", self.ops_per_mac)
        if self.pe_pipeline_stages < 0:
            raise ConfigurationError(
                f"pe_pipeline_stages must be >= 0, got {self.pe_pipeline_stages}"
            )
        if self.word_bits % 8:
            raise ConfigurationError(f"word_bits must be a multiple of 8, got {self.word_bits}")

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def word_bytes(self) -> int:
        """Bytes per datapath word."""
        return self.word_bits // 8

    @property
    def frequency_hz(self) -> float:
        """Core clock frequency."""
        return self.clock.frequency_hz

    @property
    def peak_macs_per_cycle(self) -> int:
        """Upper bound of MACs per cycle (every PE busy)."""
        return self.num_pes

    @property
    def peak_gops(self) -> float:
        """Peak throughput in GOPS (the paper's 806.4 GOPS for the default)."""
        return self.num_pes * self.ops_per_mac * self.frequency_hz / 1e9

    @property
    def kmemory_bytes_per_pe(self) -> int:
        """kMemory capacity per PE in bytes."""
        return self.kmemory_words_per_pe * self.word_bytes

    @property
    def kmemory_total_bytes(self) -> int:
        """Aggregate kMemory capacity across the chain."""
        return self.kmemory_bytes_per_pe * self.num_pes

    @property
    def onchip_memory_bytes(self) -> int:
        """Total on-chip storage: iMemory + oMemory + kMemory (352 KB default)."""
        return self.imemory_bytes + self.omemory_bytes + self.kmemory_total_bytes

    @property
    def ifmap_channels_per_cycle(self) -> int:
        """Ifmap pixels the chain can accept per cycle per primitive."""
        return 2 if self.dual_channel else 1

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    def with_pes(self, num_pes: int) -> "ChainConfig":
        """Copy of this configuration with a different chain length."""
        return replace(self, num_pes=num_pes)

    def with_frequency(self, frequency_hz: float) -> "ChainConfig":
        """Copy of this configuration with a different clock frequency."""
        return replace(self, clock=ClockDomain(frequency_hz))

    def single_channel(self) -> "ChainConfig":
        """Copy configured as the single-channel strawman of Fig. 5(a)."""
        return replace(self, dual_channel=False)

    @classmethod
    def paper_default(cls) -> "ChainConfig":
        """The exact instantiation evaluated in the paper."""
        return cls()

    def describe(self) -> str:
        """One-line summary used by reports."""
        return (
            f"Chain-NN: {self.num_pes} PEs @ {self.frequency_hz / 1e6:.0f} MHz, "
            f"{self.word_bits}-bit, peak {self.peak_gops:.1f} GOPS, "
            f"on-chip {self.onchip_memory_bytes / KIB:.0f} KiB"
        )
