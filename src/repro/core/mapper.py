"""Mapping a convolutional layer onto the 1D chain.

A layer with ``M`` ofmap channels, ``C`` ifmap channels (per group) and a
``K x K`` kernel decomposes into ``M * C_per_group`` independent 2D
convolutions ("channel pairs"); each pair is executed by one systolic
primitive as a sequence of stripes.  The mapper decides:

* how many primitives are active (``floor(P / K^2)``, Table II),
* how the channel pairs are distributed over primitives (``passes``),
* how many kernel weights each PE must hold and whether they fit the per-PE
  kMemory (if not, kernels are streamed in chunks — the total number of
  weight-load cycles is unchanged, matching the paper's 1-weight-per-cycle
  loading),
* the stripe plan of the feature map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.cnn.layer import ConvLayer
from repro.core.chain import ChainPartition, PEChain
from repro.core.config import ChainConfig
from repro.core.scan import stripe_plan
from repro.errors import MappingError


@dataclass(frozen=True)
class LayerMapping:
    """How one convolutional layer is executed on the chain.

    ``stripe_height`` and ``kernel_chunk`` record the mapping-space choices
    behind the stripe plan and the kMemory streaming granularity; the default
    (Table II) mapping uses ``stripe_height == K`` and the largest chunk the
    per-PE kMemory holds.
    """

    layer: ConvLayer
    config: ChainConfig
    partition: ChainPartition
    channel_pairs: int
    passes: int
    weights_per_pe: int
    kmemory_refills: int
    stripes_per_pair: List[int]
    stripe_height: int = 0
    kernel_chunk: int = 0

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def active_primitives(self) -> int:
        """Primitives working on this layer."""
        return self.partition.num_primitives

    @property
    def active_pes(self) -> int:
        """PEs working on this layer."""
        return self.partition.active_pes

    @property
    def spatial_utilization(self) -> float:
        """Fraction of the chain's PEs that are active (Table II definition)."""
        return self.partition.utilization

    @property
    def kernel_load_cycles(self) -> int:
        """Cycles to load every kernel weight once (one weight per cycle)."""
        return self.layer.weight_count

    @property
    def weights_fit_in_kmemory(self) -> bool:
        """True when a whole batch's worth of per-PE weights fits kMemory."""
        return self.kmemory_refills == 1

    def describe(self) -> str:
        """Human-readable mapping summary."""
        return (
            f"{self.layer.name}: {self.active_primitives} primitives "
            f"({self.active_pes}/{self.config.num_pes} PEs, "
            f"{self.spatial_utilization * 100:.1f} %), "
            f"{self.channel_pairs} channel pairs in {self.passes} passes, "
            f"{self.weights_per_pe} weights/PE "
            f"({'fits' if self.weights_fit_in_kmemory else f'{self.kmemory_refills} refills'})"
        )


class LayerMapper:
    """Builds :class:`LayerMapping` objects for a given chain configuration."""

    def __init__(self, config: ChainConfig | None = None) -> None:
        self.config = config or ChainConfig()
        self.chain = PEChain(self.config)

    def map_layer(self, layer: ConvLayer) -> LayerMapping:
        """Map ``layer`` onto the chain or raise :class:`MappingError`.

        This is the paper's fixed Table II decomposition: every primitive the
        chain can hold, full (``K``-row) stripes, and kernels streamed in the
        largest chunks the per-PE kMemory fits.
        """
        return self.map_layer_with(layer)

    def map_layer_with(
        self,
        layer: ConvLayer,
        primitives: int | None = None,
        stripe_height: int | None = None,
        kernel_chunk: int | None = None,
    ) -> LayerMapping:
        """Map ``layer`` with explicit mapping-space choices.

        ``primitives`` (how many of the chain's ``floor(P/K^2)`` primitive
        slots are used), ``stripe_height`` (ofmap rows per stripe, at most
        ``K``) and ``kernel_chunk`` (kMemory-resident passes per refill, at
        most the per-PE capacity) each default to the Table II mapping; any
        out-of-range choice raises :class:`MappingError` — these are the
        legality checks the mapping-search subsystem relies on.
        """
        kernel_area = layer.kernel_size * layer.kernel_size
        if kernel_area > self.config.num_pes:
            raise MappingError(
                f"{layer.name}: kernel {layer.kernel_size}x{layer.kernel_size} needs "
                f"{kernel_area} PEs but the chain has only {self.config.num_pes}"
            )
        partition = self.chain.partition(layer.kernel_size)
        max_primitives = partition.num_primitives
        if primitives is not None:
            if not (1 <= primitives <= max_primitives):
                raise MappingError(
                    f"{layer.name}: primitives must be in [1, {max_primitives}] "
                    f"for K={layer.kernel_size} on {self.config.num_pes} PEs, "
                    f"got {primitives}"
                )
            if primitives < max_primitives:
                partition = ChainPartition(
                    kernel_size=layer.kernel_size,
                    total_pes=self.config.num_pes,
                    slots=partition.slots[:primitives],
                )
        if stripe_height is not None and not (1 <= stripe_height <= layer.kernel_size):
            raise MappingError(
                f"{layer.name}: stripe_height must be in [1, {layer.kernel_size}], "
                f"got {stripe_height}"
            )
        height = stripe_height or layer.kernel_size
        channel_pairs = layer.channel_pairs()
        passes = math.ceil(channel_pairs / partition.num_primitives)
        # each pass pins one K x K kernel plane per primitive, i.e. one weight
        # per PE; a PE therefore needs `passes` kMemory entries for the layer.
        weights_per_pe = passes
        capacity = self.config.kmemory_words_per_pe
        if kernel_chunk is not None and not (1 <= kernel_chunk <= capacity):
            raise MappingError(
                f"{layer.name}: kernel_chunk must be in [1, {capacity}] "
                f"(per-PE kMemory words), got {kernel_chunk}"
            )
        chunk = min(kernel_chunk or capacity, weights_per_pe)
        refills = max(1, math.ceil(weights_per_pe / chunk))
        return LayerMapping(
            layer=layer,
            config=self.config,
            partition=partition,
            channel_pairs=channel_pairs,
            passes=passes,
            weights_per_pe=weights_per_pe,
            kmemory_refills=refills,
            stripes_per_pair=stripe_plan(layer.out_height, layer.kernel_size, height),
            stripe_height=height,
            kernel_chunk=chunk,
        )

    def map_network(self, layers: List[ConvLayer]) -> List[LayerMapping]:
        """Map every convolutional layer of a network."""
        return [self.map_layer(layer) for layer in layers]
