"""Batch execution scheduler: the timeline behind Fig. 9.

The performance model gives per-layer cycle counts; this module sequences
them the way the Chain-NN controller executes a batch — for each layer, load
the kernels once, then stream every image of the batch — and produces an
explicit timeline of segments.  The timeline is what Fig. 9's stacked bars
visualise, and it exposes scheduling questions the paper touches only
implicitly: how much of the batch time is kernel loading at small batch
sizes, what the end-to-end latency of the *first* image is (relevant for
real-time use), and how the per-image latency differs from the throughput-
derived 1/fps figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.core.performance import PerformanceModel
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.mapping.optimizer import OptimizedSchedule


@dataclass(frozen=True)
class TimelineSegment:
    """One contiguous activity of the chain."""

    layer_name: str
    kind: str           # "kernel_load" or "convolution"
    start_cycle: float
    end_cycle: float
    images: int         # images covered by the segment (0 for kernel loads)

    @property
    def cycles(self) -> float:
        """Duration in cycles."""
        return self.end_cycle - self.start_cycle


@dataclass(frozen=True)
class BatchSchedule:
    """A complete batch execution timeline."""

    network_name: str
    batch: int
    frequency_hz: float
    segments: List[TimelineSegment]

    @property
    def total_cycles(self) -> float:
        """Makespan of the batch in cycles."""
        return self.segments[-1].end_cycle if self.segments else 0.0

    @property
    def total_time_s(self) -> float:
        """Makespan of the batch in seconds."""
        return self.total_cycles / self.frequency_hz

    @property
    def frames_per_second(self) -> float:
        """Throughput implied by the schedule."""
        return self.batch / self.total_time_s if self.total_time_s else 0.0

    @property
    def kernel_load_cycles(self) -> float:
        """Cycles spent loading kernels over the whole batch."""
        return sum(seg.cycles for seg in self.segments if seg.kind == "kernel_load")

    @property
    def convolution_cycles(self) -> float:
        """Cycles spent streaming/convolving over the whole batch."""
        return sum(seg.cycles for seg in self.segments if seg.kind == "convolution")

    @property
    def kernel_load_fraction(self) -> float:
        """Fraction of the makespan spent loading kernels (shrinks with batch)."""
        return self.kernel_load_cycles / self.total_cycles if self.total_cycles else 0.0

    def first_image_latency_s(self) -> float:
        """Latency until the first image has passed through every layer.

        With the layer-by-layer (batch-blocked) schedule, every layer before
        the last must process the whole batch before the next layer starts,
        so the first image's result is ready one image-slot into the final
        layer's convolution segment.  This is the latency cost of the
        throughput-oriented schedule the paper uses.
        """
        if not self.segments:
            return 0.0
        last = self.segments[-1]
        if last.kind == "convolution" and last.images:
            first_done = last.start_cycle + last.cycles / last.images
        else:
            first_done = last.end_cycle
        return first_done / self.frequency_hz

    def per_layer_breakdown_ms(self) -> Dict[str, Dict[str, float]]:
        """Layer-name -> {kernel_load_ms, convolution_ms} (the Fig. 9 bars)."""
        breakdown: Dict[str, Dict[str, float]] = {}
        for segment in self.segments:
            entry = breakdown.setdefault(segment.layer_name,
                                         {"kernel_load_ms": 0.0, "convolution_ms": 0.0})
            key = "kernel_load_ms" if segment.kind == "kernel_load" else "convolution_ms"
            entry[key] += segment.cycles / self.frequency_hz * 1e3
        return breakdown


class BatchScheduler:
    """Builds :class:`BatchSchedule` timelines from the performance model."""

    def __init__(self, config: Optional[ChainConfig] = None,
                 performance: Optional[PerformanceModel] = None) -> None:
        self.config = config or ChainConfig()
        self.performance = performance or PerformanceModel(self.config)

    def schedule(self, network: Network, batch: int = 1) -> BatchSchedule:
        """Sequence a batch through every convolutional layer.

        The schedule follows the paper's execution procedure: per layer, the
        kernels are loaded once (Sec. III.B step 2) and the whole batch is
        streamed before moving to the next layer (which is what lets kernels
        be loaded once per batch regardless of batch size).
        """
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        segments: List[TimelineSegment] = []
        cursor = 0.0
        for layer in network.conv_layers:
            perf = self.performance.layer_performance(layer, batch)
            load_cycles = float(perf.kernel_load_cycles)
            segments.append(TimelineSegment(
                layer_name=layer.name,
                kind="kernel_load",
                start_cycle=cursor,
                end_cycle=cursor + load_cycles,
                images=0,
            ))
            cursor += load_cycles
            conv_cycles = perf.conv_cycles_per_batch
            segments.append(TimelineSegment(
                layer_name=layer.name,
                kind="convolution",
                start_cycle=cursor,
                end_cycle=cursor + conv_cycles,
                images=batch,
            ))
            cursor += conv_cycles
        return BatchSchedule(
            network_name=network.name,
            batch=batch,
            frequency_hz=self.config.frequency_hz,
            segments=segments,
        )

    def schedule_optimized(self, network: Network,
                           optimized: "OptimizedSchedule") -> BatchSchedule:
        """Timeline of a searched :class:`~repro.mapping.OptimizedSchedule`.

        Per-layer cycle counts come from the mapping cost model instead of
        the fixed Table II decomposition: the kernel-load segment carries the
        schedule's (re)load cycles — ``batch x weight_count`` for image-major
        layers whose kernels do not fit kMemory — and the convolution segment
        carries the integral-pass batch cycles.  Image-major layers
        interleave loads with convolutions in hardware; the timeline
        aggregates each kind per layer, which preserves every makespan-
        derived metric (fps, kernel-load fraction).
        """
        by_name = {entry.layer_name: entry for entry in optimized.layers}
        missing = [layer.name for layer in network.conv_layers
                   if layer.name not in by_name]
        if missing:
            raise ConfigurationError(
                f"{network.name}: optimized schedule lacks layers {missing} "
                f"(it was built for {optimized.network_name})"
            )
        segments: List[TimelineSegment] = []
        cursor = 0.0
        batch = optimized.batch
        for layer in network.conv_layers:
            metrics = by_name[layer.name].metrics
            load_cycles = float(metrics["kernel_load_cycles"])
            segments.append(TimelineSegment(
                layer_name=layer.name,
                kind="kernel_load",
                start_cycle=cursor,
                end_cycle=cursor + load_cycles,
                images=0,
            ))
            cursor += load_cycles
            conv_cycles = float(metrics["conv_cycles_per_image"]) * batch
            segments.append(TimelineSegment(
                layer_name=layer.name,
                kind="convolution",
                start_cycle=cursor,
                end_cycle=cursor + conv_cycles,
                images=batch,
            ))
            cursor += conv_cycles
        return BatchSchedule(
            network_name=network.name,
            batch=batch,
            frequency_hz=optimized.frequency_hz,
            segments=segments,
        )

    def batch_sensitivity(self, network: Network, batches=(1, 4, 16, 64, 128)
                          ) -> Dict[int, Dict[str, float]]:
        """Batch-size sweep: fps, kernel-load share and first-image latency."""
        results: Dict[int, Dict[str, float]] = {}
        for batch in batches:
            schedule = self.schedule(network, batch)
            results[batch] = {
                "fps": schedule.frames_per_second,
                "kernel_load_fraction": schedule.kernel_load_fraction,
                "first_image_latency_ms": schedule.first_image_latency_s() * 1e3,
            }
        return results
