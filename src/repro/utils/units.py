"""Unit constants, conversions and human-readable formatting.

The accelerator models deal in a handful of physical quantities: operation
counts (GOPS), power (W), energy (J), time (s), frequency (Hz) and data
volumes (bytes).  Keeping the conversion helpers in one module avoids the
classic off-by-1000 errors between SI (MB) and binary (MiB) units — the paper
reports on-chip memory in KB (binary) and traffic in MByte (decimal in the
text, but consistent with binary within round-off); we use binary KiB/MiB for
capacities and decimal MB for traffic, and expose both converters.
"""

from __future__ import annotations

#: SI prefixes
KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000
TERA = 1_000_000_000_000
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12

#: binary prefixes (capacities)
KIBI = 1024
MEBI = 1024 * 1024
GIBI = 1024 * 1024 * 1024


def gops(operations: float, seconds: float) -> float:
    """Return giga-operations per second for ``operations`` done in ``seconds``.

    ``operations`` counts individual operations (a MAC counts as two: one
    multiply plus one add), matching how the paper reports 806.4 GOPS for
    576 PEs x 700 MHz x 2 ops.
    """
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    return operations / seconds / GIGA


def gops_per_watt(gops_value: float, watts: float) -> float:
    """Return energy efficiency in GOPS/W."""
    if watts <= 0:
        raise ValueError(f"watts must be positive, got {watts}")
    return gops_value / watts


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def bytes_to_mib(num_bytes: float) -> float:
    """Convert a byte count to binary mebibytes (MiB)."""
    return num_bytes / MEBI


def bytes_to_kib(num_bytes: float) -> float:
    """Convert a byte count to binary kibibytes (KiB)."""
    return num_bytes / KIBI


def bytes_to_mb(num_bytes: float) -> float:
    """Convert a byte count to decimal megabytes (MB)."""
    return num_bytes / MEGA


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with an appropriate binary suffix."""
    value = float(num_bytes)
    for suffix, scale in (("GiB", GIBI), ("MiB", MEBI), ("KiB", KIBI)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {suffix}"
    return f"{value:.0f} B"


def format_time(seconds: float) -> str:
    """Render a duration with ms/us/ns granularity."""
    value = float(seconds)
    if abs(value) >= 1.0:
        return f"{value:.3f} s"
    if abs(value) >= MILLI:
        return f"{value / MILLI:.2f} ms"
    if abs(value) >= MICRO:
        return f"{value / MICRO:.2f} us"
    return f"{value / NANO:.2f} ns"


def format_frequency(hertz: float) -> str:
    """Render a clock frequency (e.g. ``700.0 MHz``)."""
    value = float(hertz)
    if abs(value) >= GIGA:
        return f"{value / GIGA:.2f} GHz"
    if abs(value) >= MEGA:
        return f"{value / MEGA:.1f} MHz"
    if abs(value) >= KILO:
        return f"{value / KILO:.1f} kHz"
    return f"{value:.0f} Hz"


def format_power(watts: float) -> str:
    """Render power (e.g. ``567.5 mW``)."""
    value = float(watts)
    if abs(value) >= 1.0:
        return f"{value:.2f} W"
    return f"{value / MILLI:.1f} mW"


def format_energy(joules: float) -> str:
    """Render energy with J/mJ/uJ/nJ/pJ granularity."""
    value = float(joules)
    for suffix, scale in (("J", 1.0), ("mJ", MILLI), ("uJ", MICRO), ("nJ", NANO), ("pJ", PICO)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {suffix}"
    return f"{value / PICO:.4f} pJ"


def format_gops(gops_value: float) -> str:
    """Render a throughput in GOPS or TOPS."""
    if abs(gops_value) >= 1000.0:
        return f"{gops_value / 1000.0:.2f} TOPS"
    return f"{gops_value:.1f} GOPS"
