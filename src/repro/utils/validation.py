"""Small argument-validation helpers used across configuration dataclasses.

All helpers raise :class:`repro.errors.ConfigurationError` so that invalid
user input surfaces as a library error rather than a bare ``ValueError`` deep
inside a model.
"""

from __future__ import annotations

from numbers import Integral, Real

from repro.errors import ConfigurationError


def check_positive(name: str, value: Real) -> None:
    """Ensure ``value`` is a strictly positive real number."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")


def check_non_negative(name: str, value: Real) -> None:
    """Ensure ``value`` is a real number >= 0."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")


def check_positive_int(name: str, value: int) -> None:
    """Ensure ``value`` is a strictly positive integer."""
    if not isinstance(value, Integral) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value}")


def check_in_range(name: str, value: Real, low: Real, high: Real) -> None:
    """Ensure ``low <= value <= high``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")


def check_probability(name: str, value: Real) -> None:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    check_in_range(name, value, 0.0, 1.0)
