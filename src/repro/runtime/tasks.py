"""Registered worker tasks of the parallel runtime.

A task is a module-level function ``fn(payload, context) -> result`` entered
in :data:`TASKS`; :class:`~repro.runtime.pool.ParallelRuntime` workers look
tasks up by name, so only small payloads and names ever cross the process
boundary.  ``context`` is a per-worker dict that persists across tasks — the
"build once per worker, reuse across calls" stash for engines, networks and
simulators.

Heavy imports happen lazily inside the task bodies: the registry must be
importable by the pool module without dragging the whole engine/mapping
stack into every process that merely touches the runtime.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict

#: task name -> callable(payload, context); workers resolve tasks here
TASKS: Dict[str, Callable[[Any, Dict[str, Any]], Any]] = {}


def task(name: str) -> Callable:
    """Register a task function under ``name`` (import-time side effect)."""
    def register(fn: Callable[[Any, Dict[str, Any]], Any]) -> Callable:
        TASKS[name] = fn
        return fn
    return register


# --------------------------------------------------------------------- #
# diagnostics
# --------------------------------------------------------------------- #
@task("runtime.selftest")
def _selftest(payload: Dict[str, Any], context: Dict[str, Any]) -> Any:
    """Health-check / failure-injection task (tests and pool smoke checks).

    ``action`` selects the behaviour: ``echo`` returns ``value`` along with
    the worker id, ``raise`` throws (error-propagation path), ``exit`` kills
    the worker process outright (dead-worker detection path), ``sleep``
    stalls for ``value`` seconds (deadline/straggler path), ``count``
    increments a per-worker counter (persistent-context proof).
    """
    action = payload.get("action", "echo")
    if action == "raise":
        raise RuntimeError(payload.get("value", "selftest failure"))
    if action == "exit":
        os._exit(int(payload.get("value", 1)))
    if action == "sleep":
        import time

        time.sleep(float(payload.get("value", 0.0)))
        return {"worker_id": context["worker_id"], "slept": True}
    if action == "count":
        context["selftest_count"] = context.get("selftest_count", 0) + 1
        return {"worker_id": context["worker_id"],
                "count": context["selftest_count"]}
    return {"worker_id": context["worker_id"], "value": payload.get("value")}


# --------------------------------------------------------------------- #
# compiled-kernel backend configuration
# --------------------------------------------------------------------- #
@task("kernels.configure")
def _kernels_configure(payload: Dict[str, Any], context: Dict[str, Any]) -> Any:
    """Install and pre-warm the kernel backend in this worker (broadcast).

    Broadcast once after pool creation so every worker pays any JIT
    compilation cost up front, instead of on its first real task.  A worker
    where the requested backend cannot be provided degrades to the NumPy
    reference backend — bit-identical results, so the pool never mixes
    numerics even if workers disagree on availability.
    """
    from repro.kernels import set_default_backend, warmup

    requested = payload.get("backend")
    try:
        set_default_backend(requested)
        effective = warmup()
    except Exception:  # pragma: no cover - defensive: never kill the pool
        set_default_backend("numpy")
        effective = warmup()
    context["kernel_backend"] = effective
    return {"worker_id": context["worker_id"], "kernel_backend": effective}


# --------------------------------------------------------------------- #
# sweep evaluation (SweepExecutor)
# --------------------------------------------------------------------- #
@task("sweep.set_network")
def _set_network(payload: Dict[str, Any], context: Dict[str, Any]) -> str:
    """Install a network in the worker's cache (broadcast once per sweep)."""
    networks = context.setdefault("networks", {})
    networks[payload["fingerprint"]] = payload["network"]
    return payload["fingerprint"]


@task("sweep.point")
def _sweep_point(payload: Dict[str, Any], context: Dict[str, Any]) -> Any:
    """Evaluate one (config, batch) design point through a cached engine."""
    from repro.engine.cache import canonical_json
    from repro.engine.registry import create_engine

    engines = context.setdefault("engines", {})
    key = canonical_json({"name": payload["engine"],
                          "kwargs": payload.get("engine_kwargs") or {}})
    engine = engines.get(key)
    if engine is None:
        engine = create_engine(payload["engine"],
                               **(payload.get("engine_kwargs") or {}))
        engines[key] = engine
    network = context.get("networks", {}).get(payload["network_fingerprint"])
    if network is None:
        raise RuntimeError(
            f"worker has no network {payload['network_fingerprint']!r}; "
            "broadcast sweep.set_network first"
        )
    return engine.evaluate(network, payload["config"], payload["batch"])


# --------------------------------------------------------------------- #
# mapping search (ScheduleOptimizer)
# --------------------------------------------------------------------- #
@task("map.search_layer")
def _map_search_layer(payload: Dict[str, Any], context: Dict[str, Any]) -> Any:
    """Search one layer's mapspace; identical to the serial per-layer body."""
    from repro.mapping.optimizer import search_layer_entry

    return search_layer_entry(
        layer=payload["layer"],
        config=payload["config"],
        objective=payload["objective"],
        strategy=payload["strategy"],
        batch=payload["batch"],
        energy=payload["energy"],
        shortlist=payload["shortlist"],
        kernel_backend=payload.get("kernel_backend"),
        algorithm=payload.get("algorithm", "direct"),
    )


# --------------------------------------------------------------------- #
# functional verification (FunctionalNetworkRunner)
# --------------------------------------------------------------------- #
@task("verify.sim_block")
def _verify_sim_block(payload: Dict[str, Any], context: Dict[str, Any]) -> int:
    """Simulate one ofmap channel block into the shared output tensor.

    The padded ifmaps, weights and the assembly buffer arrive as
    :class:`~repro.runtime.shm.SharedTensor` handles, so a VGG-scale tensor
    crosses the process boundary as a few dozen bytes.  Block values are
    bit-identical to the serial whole-layer computation because every ofmap
    channel is an independent broadcast-multiply/merged-axis reduction.
    ``algorithm`` routes the block to the direct sliding-window kernel
    (default) or the Winograd F(2x2,3x3) tile kernel — whose per-channel
    independence gives the same partition bit-identity.
    """
    from repro.sim.functional_vectorized import vectorized_ofmap_block
    from repro.sim.winograd import winograd_ofmap_block

    layer = payload["layer"]
    padded_handle = payload["padded"]
    weights_handle = payload["weights"]
    out_handle = payload["out"]
    m_start, m_stop = payload["m_start"], payload["m_stop"]
    algorithm = payload.get("algorithm", "direct")
    try:
        padded = padded_handle.open()
        weights = weights_handle.open()
        out = out_handle.open()
        if algorithm == "winograd":
            winograd_ofmap_block(layer, padded, weights, m_start, m_stop,
                                 out=out,
                                 kernel_backend=payload.get("kernel_backend"))
        else:
            vectorized_ofmap_block(layer, padded, weights, m_start, m_stop,
                                   out=out,
                                   kernel_backend=payload.get("kernel_backend"))
    finally:
        padded_handle.close()
        weights_handle.close()
        out_handle.close()
    return m_stop - m_start
