"""Fault-tolerant supervision on top of the persistent worker pool.

:class:`~repro.runtime.pool.ParallelRuntime` is the *mechanism* layer: it
detects a dead worker but treats death as fatal for the whole call.  This
module adds the *policy* layer — :class:`SupervisedRuntime` keeps a run
alive through worker crashes, hangs and stragglers:

* **per-task deadlines** — a worker stuck on one task past
  :attr:`RetryPolicy.deadline` is killed and its work reassigned (this is
  how hung workers are recovered; nothing else can interrupt a wedged
  child process);
* **respawn + retry with backoff** — dead workers are replaced (bounded by
  :attr:`RetryPolicy.max_respawns` per call, with exponential backoff
  between consecutive deaths) and their in-flight tasks re-dispatched to
  healthy workers, each task bounded by :attr:`RetryPolicy.max_attempts`;
* **context replay** — a respawned worker is empty; the supervisor keeps a
  log of every successful :meth:`broadcast` (networks, kernel config) and
  replays it into fresh workers before handing them tasks;
* **poison quarantine** — a task whose dispatches keep killing workers is
  pulled out of the pool after ``max_attempts`` charges: re-executed
  serially in the parent (``quarantine="serial"``, the default) or
  surfaced as a structured :class:`TaskFailure` result
  (``quarantine="failure"``) instead of killing the run;
* **serial drain** — when no parallel capacity remains (every worker dead
  or condemned and the respawn budget spent), the remaining tasks run
  serially in the parent.

The degradation ladder is therefore parallel → respawn → serial, and every
rung produces **bit-identical results**: registered tasks are pure
functions of their payloads (worker state is only a cache), so *where* a
task runs never changes *what* it returns.  Execution is at-least-once —
a deadline kill can race a worker that just finished, re-running the task
— which is safe for the same reason.

Retries, attempts and injected faults are all keyed on ``(task_id,
attempt)``, so a seeded :class:`~repro.runtime.faults.FaultPlan` exercises
exactly the same recovery path on every run.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import trace as obs_trace
from repro.obs.metrics import REGISTRY
from repro.runtime.pool import (
    _JOIN_SECONDS,
    _POLL_SECONDS,
    ParallelRuntime,
    WorkerError,
)
from repro.runtime.tasks import TASKS

#: seconds one task attempt may hold a worker before it is killed/retried
DEADLINE_ENV = "REPRO_TASK_DEADLINE"

#: attempts per task before quarantine (overrides RetryPolicy.max_attempts)
RETRIES_ENV = "REPRO_TASK_RETRIES"

#: tasks queued per worker beyond the running one; small keeps the requeue
#: set small on death, >0 keeps workers busy without a round-trip stall
_WORKER_WINDOW = 2


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the supervision layer (all bounded, all overridable)."""

    #: seconds one attempt may run before its worker is killed (None = no
    #: deadline; hung workers then only surface through explicit close)
    deadline: Optional[float] = None
    #: worker deaths charged to one task before it is quarantined
    max_attempts: int = 3
    #: base seconds slept before a respawn; doubles per consecutive death
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    #: worker respawns allowed per map/broadcast call; exhausting it
    #: condemns dead slots and, with none left, drops to the serial drain
    max_respawns: int = 8
    #: what happens to a poison task: "serial" re-executes it in the
    #: parent (fault-free by construction), "failure" returns a
    #: :class:`TaskFailure` in its result slot
    quarantine: str = "serial"

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {self.max_respawns}")
        if self.quarantine not in ("serial", "failure"):
            raise ValueError(
                f"quarantine must be 'serial' or 'failure', got {self.quarantine!r}"
            )

    @classmethod
    def from_env(cls, **overrides: Any) -> "RetryPolicy":
        """Policy with ``$REPRO_TASK_DEADLINE`` / ``$REPRO_TASK_RETRIES`` applied."""
        kwargs: Dict[str, Any] = {}
        deadline = os.environ.get(DEADLINE_ENV)
        if deadline:
            kwargs["deadline"] = float(deadline)
        retries = os.environ.get(RETRIES_ENV)
        if retries:
            kwargs["max_attempts"] = int(retries)
        kwargs.update(overrides)
        return cls(**kwargs)


@dataclass(frozen=True)
class TaskFailure:
    """Structured result of a quarantined task (``quarantine="failure"``).

    Occupies the task's slot in the :meth:`SupervisedRuntime.map` result
    list, so callers opting into failure surfacing can see exactly which
    payloads were poisonous without losing the rest of the run.
    """

    task: str
    task_id: int
    attempts: int
    reason: str


@dataclass
class SupervisionStats:
    """Cumulative recovery counters of one :class:`SupervisedRuntime`."""

    dispatched: int = 0
    completed: int = 0
    retries: int = 0
    respawns: int = 0
    worker_deaths: int = 0
    deadline_kills: int = 0
    quarantined: int = 0
    task_failures: int = 0
    serial_tasks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class SupervisedRuntime(ParallelRuntime):
    """A :class:`ParallelRuntime` that survives worker crashes and hangs."""

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        fault_plan=None,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(workers, start_method, fault_plan)
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        self.stats = SupervisionStats()
        #: successfully broadcast (task, payload) pairs, replayed into every
        #: respawned worker so fresh processes regain networks/kernel config
        self._broadcast_log: List[Tuple[str, Any]] = []
        #: per-worker count of log entries applied to the live incarnation
        self._applied: List[int] = [0] * workers
        #: context for quarantine/serial-drain execution in the parent
        self._parent_context: Dict[str, Any] = {"worker_id": -1}
        self._parent_replayed = 0
        #: consecutive deaths without an intervening success (backoff input)
        self._death_streak = 0

    # ------------------------------------------------------------------ #
    # worker lifecycle helpers
    # ------------------------------------------------------------------ #
    def _count(self, field: str, n: int = 1, event: bool = True,
               **attrs: Any) -> None:
        """Bump one :class:`SupervisionStats` field and its mirror metric.

        Every stats field doubles as a ``runtime.<field>`` counter in the
        observability registry, and rare recovery events (deaths, respawns,
        deadline kills, quarantines) additionally land as trace instants so
        the merged pool timeline shows *when* recovery happened, not just
        how often.
        """
        setattr(self.stats, field, getattr(self.stats, field) + n)
        REGISTRY.counter("runtime." + field).inc(n)
        if event:
            obs_trace.instant("runtime." + field, **attrs)

    def _respawn(self, worker_id: int) -> None:
        """Replace a dead worker with a fresh (context-empty) process."""
        self._count("respawns", worker_id=worker_id)
        time.sleep(min(
            self.policy.backoff * self.policy.backoff_factor
            ** max(0, self._death_streak - 1),
            self.policy.max_backoff,
        ))
        self._applied[worker_id] = 0
        self._spawn_worker(worker_id)

    def _kill_worker(self, worker_id: int) -> None:
        process = self._processes[worker_id]
        if process is not None and process.is_alive():
            process.terminate()
            process.join(_JOIN_SECONDS)

    def _replay_parent_context(self) -> None:
        """Apply the broadcast log to the parent's own task context."""
        while self._parent_replayed < len(self._broadcast_log):
            name, payload = self._broadcast_log[self._parent_replayed]
            self._parent_replayed += 1
            TASKS[name](payload, self._parent_context)

    def _run_in_parent(self, task: str, payload: Any) -> Any:
        """Serial execution of one task in the parent (quarantine/drain)."""
        self._replay_parent_context()
        try:
            with obs_trace.span("task:" + task, where="parent"):
                return TASKS[task](payload, self._parent_context)
        except Exception as error:
            raise WorkerError(
                "runtime task failed during serial fallback: "
                f"{type(error).__name__}: {error}"
            ) from error

    # ------------------------------------------------------------------ #
    # supervised broadcast
    # ------------------------------------------------------------------ #
    def broadcast(self, task: str, payload: Any) -> List[Any]:
        """Run one task on every live worker, surviving deaths mid-way.

        The entry joins the replay log *before* dispatch, so a worker dying
        mid-broadcast receives it again through respawn replay — and only
        entries that executed without raising stay in the log.
        """
        self._check_dispatch(task)
        self._broadcast_log.append((task, payload))
        target = len(self._broadcast_log)
        try:
            return self._sync_workers(target)
        except WorkerError:
            if len(self._broadcast_log) == target:
                self._broadcast_log.pop()
                self._parent_replayed = min(self._parent_replayed,
                                            len(self._broadcast_log))
            raise

    def _queue_replay(self, worker_id, queues, inflight, head_since, target):
        """Send this worker every log entry it has not applied yet."""
        for log_index in range(self._applied[worker_id], target):
            name, payload = self._broadcast_log[log_index]
            task_id = self._task_counter
            self._task_counter += 1
            self._inboxes[worker_id].put((task_id, 0, name, payload))
            if not queues[worker_id]:
                head_since[worker_id] = time.monotonic()
            queues[worker_id].append((task_id, 0, None))
            inflight[(task_id, 0)] = worker_id

    def _revive_dead_slots(self, budget: List[int]) -> Set[int]:
        """Usable worker ids, respawning between-call deaths budget permitting."""
        alive: Set[int] = set()
        for worker_id in range(self.workers):
            process = self._processes[worker_id]
            if process is not None and process.is_alive():
                alive.add(worker_id)
            elif budget[0] > 0:
                budget[0] -= 1
                self._respawn(worker_id)
                alive.add(worker_id)
        return alive

    def _sync_workers(self, target: Optional[int] = None) -> List[Any]:
        """Bring every worker's applied-log prefix up to ``target``.

        Returns the last log entry's result per worker slot (``None`` for
        slots condemned along the way) — which makes it double as the
        supervised broadcast implementation.
        """
        policy = self.policy
        if target is None:
            target = len(self._broadcast_log)
        results: List[Any] = [None] * self.workers
        budget = [policy.max_respawns]
        charges = [0] * self.workers
        queues: Dict[int, Deque] = {}
        head_since: Dict[int, float] = {}
        inflight: Dict[Tuple[int, int], int] = {}
        alive = self._revive_dead_slots(budget)
        for worker_id in alive:
            queues[worker_id] = deque()
            self._queue_replay(worker_id, queues, inflight, head_since, target)

        def condemned_or_respawn(worker_id: int) -> None:
            self._count("worker_deaths", worker_id=worker_id)
            self._death_streak += 1
            charges[worker_id] += 1
            while queues[worker_id]:
                task_id, attempt, _ = queues[worker_id].popleft()
                inflight.pop((task_id, attempt), None)
            if charges[worker_id] < policy.max_attempts and budget[0] > 0:
                budget[0] -= 1
                self._respawn(worker_id)
                self._queue_replay(worker_id, queues, inflight, head_since, target)
            else:
                alive.discard(worker_id)
                queues.pop(worker_id, None)
                self._close_reader(worker_id)

        while any(self._applied[w] < target for w in alive):
            messages, eof = self._poll_results(_POLL_SECONDS)
            # messages first: results a worker flushed before dying are
            # real results and must not be charged as failures
            for _, task_id, attempt, ok, value in messages:
                worker_id = inflight.pop((task_id, attempt), None)
                if worker_id is None:
                    continue  # stale: an earlier call or a dead incarnation
                queue = queues.get(worker_id)
                if queue and queue[0][0] == task_id:
                    queue.popleft()
                if queue:
                    head_since[worker_id] = time.monotonic()
                if not ok:
                    raise WorkerError(f"runtime task failed in worker:\n{value}")
                self._death_streak = 0
                self._applied[worker_id] += 1
                if self._applied[worker_id] == target:
                    results[worker_id] = value
            for worker_id in sorted(set(eof)):
                if worker_id in alive:
                    condemned_or_respawn(worker_id)
            if not messages and not eof:
                now = time.monotonic()
                for worker_id in sorted(alive):
                    process = self._processes[worker_id]
                    if process.is_alive():
                        if (policy.deadline is not None and queues[worker_id]
                                and now - head_since[worker_id] >= policy.deadline):
                            self._count("deadline_kills", worker_id=worker_id)
                            self._kill_worker(worker_id)
                        else:
                            continue
                    condemned_or_respawn(worker_id)
        return results

    # ------------------------------------------------------------------ #
    # supervised map
    # ------------------------------------------------------------------ #
    def map(self, task: str, payloads: Sequence[Any]) -> List[Any]:
        """Run ``task`` over ``payloads`` with retry/respawn/quarantine.

        Results come back in submission order and are bit-identical to the
        serial path regardless of how many workers died along the way; a
        poison payload either re-executes in the parent or yields a
        :class:`TaskFailure` in its slot, per :attr:`RetryPolicy.quarantine`.
        """
        self._check_dispatch(task)
        payloads = list(payloads)
        first_id = self._task_counter
        self._task_counter += len(payloads)
        if not payloads:
            return []

        policy = self.policy
        count = len(payloads)
        self._count("dispatched", count, event=False)
        results: List[Any] = [None] * count
        done = [False] * count
        charges = [0] * count     # worker deaths attributed to each task
        attempts = [0] * count    # dispatches so far (the fault-plan key)
        pending: Deque[int] = deque(range(count))
        remaining = count
        budget = [policy.max_respawns]
        queues: Dict[int, Deque] = {}
        head_since: Dict[int, float] = {}
        inflight: Dict[Tuple[int, int], int] = {}
        alive = self._revive_dead_slots(budget)
        log_target = len(self._broadcast_log)
        for worker_id in alive:
            queues[worker_id] = deque()
            self._queue_replay(worker_id, queues, inflight, head_since, log_target)

        def finish(index: int, value: Any) -> None:
            nonlocal remaining
            if not done[index]:
                results[index] = value
                done[index] = True
                remaining -= 1

        def quarantine(index: int) -> None:
            self._count("quarantined", task_id=first_id + index, task=task)
            if policy.quarantine == "failure":
                self._count("task_failures", event=False)
                finish(index, TaskFailure(
                    task=task,
                    task_id=first_id + index,
                    attempts=charges[index],
                    reason=(
                        f"task killed {charges[index]} worker(s); "
                        "quarantined after exhausting retry attempts"
                    ),
                ))
            else:
                self._count("serial_tasks", event=False)
                finish(index, self._run_in_parent(task, payloads[index]))

        def handle_death(worker_id: int) -> None:
            self._count("worker_deaths", worker_id=worker_id)
            self._death_streak += 1
            requeue: List[int] = []
            first_entry = True
            while queues[worker_id]:
                task_id, attempt, index = queues[worker_id].popleft()
                inflight.pop((task_id, attempt), None)
                if index is None:  # context replay; re-issued on respawn
                    first_entry = False
                    continue
                if done[index]:
                    first_entry = False
                    continue
                if first_entry:
                    # the head task was (presumably) running when the worker
                    # died — it takes the blame; queued-behind tasks don't
                    charges[index] += 1
                    if charges[index] >= policy.max_attempts:
                        quarantine(index)
                        first_entry = False
                        continue
                    self._count("retries", task_id=first_id + index)
                requeue.append(index)
                first_entry = False
            pending.extendleft(reversed(requeue))
            if budget[0] > 0:
                budget[0] -= 1
                self._respawn(worker_id)
                self._queue_replay(worker_id, queues, inflight, head_since,
                                   log_target)
            else:
                alive.discard(worker_id)
                queues.pop(worker_id, None)
                self._close_reader(worker_id)

        while remaining:
            if not alive:
                # the serial drain: no parallel capacity left, finish in
                # the parent — same tasks, same payloads, same results
                for index in range(count):
                    if not done[index]:
                        self._count("serial_tasks", event=False)
                        finish(index, self._run_in_parent(task, payloads[index]))
                break
            for worker_id in sorted(alive):
                while pending and len(queues[worker_id]) < _WORKER_WINDOW:
                    index = pending.popleft()
                    attempt = attempts[index]
                    attempts[index] += 1
                    task_id = first_id + index
                    self._inboxes[worker_id].put(
                        (task_id, attempt, task, payloads[index]))
                    if not queues[worker_id]:
                        head_since[worker_id] = time.monotonic()
                    queues[worker_id].append((task_id, attempt, index))
                    inflight[(task_id, attempt)] = worker_id
            messages, eof = self._poll_results(_POLL_SECONDS)
            # messages first: results a worker flushed before dying are
            # real results and must not be charged as failures
            for _, task_id, attempt, ok, value in messages:
                worker_id = inflight.pop((task_id, attempt), None)
                if worker_id is None:
                    continue  # stale: an earlier call or a dead incarnation
                queue = queues.get(worker_id)
                found = None
                if queue is not None:
                    for position, entry in enumerate(queue):
                        if entry[0] == task_id and entry[1] == attempt:
                            found = entry
                            del queue[position]
                            break
                    if queue:
                        head_since[worker_id] = time.monotonic()
                if found is None:
                    continue
                index = found[2]
                if index is None:  # a context-replay result
                    self._death_streak = 0
                    self._applied[worker_id] += 1
                    continue
                if not ok:
                    raise WorkerError(f"runtime task failed in worker:\n{value}")
                self._death_streak = 0
                self._count("completed", event=False)
                finish(index, value)
            for worker_id in sorted(set(eof)):
                if worker_id in alive:
                    handle_death(worker_id)
            if not messages and not eof:
                now = time.monotonic()
                for worker_id in sorted(alive):
                    process = self._processes[worker_id]
                    if process.is_alive():
                        if (policy.deadline is not None and queues[worker_id]
                                and now - head_since[worker_id] >= policy.deadline):
                            self._count("deadline_kills", worker_id=worker_id)
                            self._kill_worker(worker_id)
                        else:
                            continue
                    handle_death(worker_id)
        return results
