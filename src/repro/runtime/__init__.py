"""Persistent shared-memory parallel runtime.

``repro.runtime`` is the process-level parallel substrate the evaluate /
search / verify pipeline runs on:

* :class:`~repro.runtime.pool.ParallelRuntime` — persistent worker
  processes with per-worker task queues, ordered result assembly, error
  propagation and graceful serial degradation on platforms without process
  pools;
* :class:`~repro.runtime.supervisor.SupervisedRuntime` — the fault-tolerant
  layer on top: per-task deadlines, dead-worker respawn with broadcast-log
  replay, bounded retry with backoff, poison-task quarantine and a
  parallel → respawn → serial degradation ladder, all bit-identical to the
  serial path;
* :mod:`~repro.runtime.faults` — deterministic, seeded fault injection
  (``$REPRO_FAULT_SPEC``) consulted by workers at task boundaries, so the
  recovery machinery is reproducibly testable;
* :class:`~repro.runtime.shm.SharedTensor` — zero-copy shared-memory NumPy
  tensors (with an inline-pickle fallback), so multi-hundred-MB ifmap /
  weight / ofmap tensors never cross the process boundary through pickle;
* :mod:`~repro.runtime.tasks` — the registry of worker-side task functions
  (sweep point evaluation, per-layer mapping search, ofmap-block
  simulation), each reusing per-worker cached engines and networks.

Consumers (``SweepExecutor``, ``ScheduleOptimizer``,
``FunctionalNetworkRunner``) guarantee **bit-identical results** between
their serial and parallel paths; the runtime only changes wall-clock time —
even when workers crash or hang mid-run.
"""

from repro.runtime.faults import (
    FAULT_SPEC_ENV,
    FaultPlan,
    FaultRule,
    FaultSpecError,
)
from repro.runtime.pool import (
    LazyRuntime,
    ParallelRuntime,
    WorkerError,
    resolve_workers,
    shared_runtime,
)
from repro.runtime.shm import SharedTensor
from repro.runtime.supervisor import (
    RetryPolicy,
    SupervisedRuntime,
    SupervisionStats,
    TaskFailure,
)
from repro.runtime.tasks import TASKS, task

__all__ = [
    "FAULT_SPEC_ENV",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "LazyRuntime",
    "ParallelRuntime",
    "shared_runtime",
    "RetryPolicy",
    "SharedTensor",
    "SupervisedRuntime",
    "SupervisionStats",
    "TASKS",
    "TaskFailure",
    "WorkerError",
    "resolve_workers",
    "task",
]
