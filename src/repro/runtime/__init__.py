"""Persistent shared-memory parallel runtime.

``repro.runtime`` is the process-level parallel substrate the evaluate /
search / verify pipeline runs on:

* :class:`~repro.runtime.pool.ParallelRuntime` — persistent worker
  processes with per-worker task queues, ordered result assembly, error
  propagation and graceful serial degradation on platforms without process
  pools;
* :class:`~repro.runtime.shm.SharedTensor` — zero-copy shared-memory NumPy
  tensors (with an inline-pickle fallback), so multi-hundred-MB ifmap /
  weight / ofmap tensors never cross the process boundary through pickle;
* :mod:`~repro.runtime.tasks` — the registry of worker-side task functions
  (sweep point evaluation, per-layer mapping search, ofmap-block
  simulation), each reusing per-worker cached engines and networks.

Consumers (``SweepExecutor``, ``ScheduleOptimizer``,
``FunctionalNetworkRunner``) guarantee **bit-identical results** between
their serial and parallel paths; the runtime only changes wall-clock time.
"""

from repro.runtime.pool import (
    LazyRuntime,
    ParallelRuntime,
    WorkerError,
    resolve_workers,
)
from repro.runtime.shm import SharedTensor
from repro.runtime.tasks import TASKS, task

__all__ = [
    "LazyRuntime",
    "ParallelRuntime",
    "SharedTensor",
    "TASKS",
    "WorkerError",
    "resolve_workers",
    "task",
]
