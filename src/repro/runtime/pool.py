"""Persistent process pool with ordered results and serial degradation.

``ProcessPoolExecutor`` pays its construction cost on every sweep call and
re-pickles every payload from scratch; :class:`ParallelRuntime` instead keeps
**persistent workers** alive across calls, so per-worker state (engines,
simulators, broadcast networks) is built once and reused, and large tensors
travel through :mod:`repro.runtime.shm` instead of pickle.

Design points:

* **per-worker inboxes** — tasks are assigned round-robin by index, which
  makes result assembly deterministic and lets :meth:`broadcast` address
  every worker exactly once (context distribution);
* **ordered assembly** — :meth:`map` returns results in submission order
  regardless of completion order;
* **error propagation** — a task exception is re-raised in the parent as
  :class:`WorkerError` carrying the worker-side traceback; a *dead* worker
  (hard crash, ``os._exit``) is detected and reported instead of hanging;
* **graceful degradation** — :meth:`ParallelRuntime.create` returns ``None``
  on platforms that cannot provide process pools (missing semaphores,
  restricted sandboxes); callers fall back to bit-identical serial paths.
"""

from __future__ import annotations

import os
import queue as queue_module
import traceback
import warnings
from typing import Any, Dict, List, Optional, Sequence

from repro.runtime.tasks import TASKS

#: set to force pool creation on single-core hosts (tests, debugging)
FORCE_PARALLEL_ENV = "REPRO_FORCE_PARALLEL"

#: one single-core degradation warning per process, not one per consumer
_warned_single_core = False

#: seconds between worker-liveness checks while draining results
_POLL_SECONDS = 0.1

#: seconds to wait for a worker to exit after the shutdown sentinel
_JOIN_SECONDS = 5.0


class WorkerError(RuntimeError):
    """A task failed (or its worker died) in the parallel runtime."""


def resolve_workers(workers: Optional[int]) -> int:
    """Requested worker count -> effective count (``None`` = CPU count)."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _worker_main(worker_id: int, inbox, outbox) -> None:
    """Worker loop: run registered tasks against a persistent context."""
    import pickle

    context: Dict[str, Any] = {"worker_id": worker_id}
    while True:
        message = inbox.get()
        if message is None:
            break
        task_id, name, payload = message
        try:
            fn = TASKS[name]
            result = fn(payload, context)
            # the outbox pickles in a feeder thread, where a pickling error
            # would silently drop the message and hang the parent; failing
            # here instead routes it through the error path below
            pickle.dumps(result)
            outbox.put((worker_id, task_id, True, result))
        except BaseException as error:  # noqa: BLE001 - forwarded to parent
            detail = f"{type(error).__name__}: {error}\n{traceback.format_exc()}"
            outbox.put((worker_id, task_id, False, detail))


class ParallelRuntime:
    """Persistent worker processes executing registered tasks."""

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        import multiprocessing as mp

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        # fork keeps worker startup cheap and inherits registered tasks;
        # other platforms fall back to their default start method
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self.workers = workers
        self.start_method = start_method
        self._outbox = self._ctx.Queue()
        self._inboxes = [self._ctx.SimpleQueue() for _ in range(workers)]
        self._processes = []
        self._closed = False
        self._task_counter = 0
        for worker_id, inbox in enumerate(self._inboxes):
            process = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, inbox, self._outbox),
                daemon=True,
                name=f"repro-runtime-{worker_id}",
            )
            process.start()
            self._processes.append(process)

    # ------------------------------------------------------------------ #
    # construction with degradation
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, workers: Optional[int] = None) -> Optional["ParallelRuntime"]:
        """A runtime, or ``None`` where the platform cannot provide one."""
        count = resolve_workers(workers)
        try:
            return cls(count)
        except (OSError, ValueError, RuntimeError, ImportError):
            # restricted sandboxes (no semaphores / fork) — callers degrade
            # to their serial paths, which produce identical results
            return None

    # ------------------------------------------------------------------ #
    # task dispatch
    # ------------------------------------------------------------------ #
    def map(self, task: str, payloads: Sequence[Any]) -> List[Any]:
        """Run ``task`` over ``payloads``; results in submission order.

        Payload ``i`` goes to worker ``i % workers`` — a deterministic
        assignment, so repeated calls with the same payloads exercise the
        same worker-local caches.
        """
        self._check_dispatch(task)
        payloads = list(payloads)
        # reserve the id range *before* submitting: if a payload fails to
        # pickle mid-loop, already-submitted tasks must never share an id
        # with a later call (the drain filter relies on disjoint ranges)
        first_id = self._task_counter
        self._task_counter += len(payloads)
        for index, payload in enumerate(payloads):
            self._inboxes[index % self.workers].put((first_id + index,
                                                     task, payload))
        return self._drain(first_id, len(payloads))

    def broadcast(self, task: str, payload: Any) -> List[Any]:
        """Run one task on *every* worker (context distribution); ordered."""
        self._check_dispatch(task)
        first_id = self._task_counter
        self._task_counter += self.workers
        for offset, inbox in enumerate(self._inboxes):
            inbox.put((first_id + offset, task, payload))
        return self._drain(first_id, self.workers)

    def _drain(self, first_id: int, count: int) -> List[Any]:
        """Collect ``count`` results, raising on task errors or dead workers."""
        results: List[Any] = [None] * count
        received = 0
        failure: Optional[str] = None
        while received < count:
            try:
                _, task_id, ok, value = self._outbox.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                dead = [p.name for p in self._processes if not p.is_alive()]
                if dead:
                    self._shutdown(force=True)
                    raise WorkerError(
                        "worker process died while running tasks: "
                        + ", ".join(dead)
                    ) from None
                continue
            if not (first_id <= task_id < first_id + count):
                continue  # stray result from an aborted earlier call
            received += 1
            if ok:
                results[task_id - first_id] = value
            elif failure is None:
                failure = str(value)
        if failure is not None:
            raise WorkerError(f"runtime task failed in worker:\n{failure}")
        return results

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once the pool stopped (explicitly or after a worker died)."""
        return self._closed

    def _check_dispatch(self, task: str) -> None:
        if self._closed:
            raise WorkerError("runtime is closed")
        if task not in TASKS:
            raise WorkerError(f"unknown runtime task {task!r}")

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._shutdown(force=False)

    def _shutdown(self, force: bool) -> None:
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        for process in self._processes:
            process.join(0.0 if force else _JOIN_SECONDS)
            if process.is_alive():
                process.terminate()
                process.join(_JOIN_SECONDS)

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


class LazyRuntime:
    """Create-once/close-once ownership of a :class:`ParallelRuntime`.

    The shared lifecycle every runtime consumer (sweep executor, schedule
    optimizer, network runner, functional engine) needs:

    * the pool is created on first :meth:`get` and **reused across calls**
      (that is what makes the workers persistent);
    * a failed creation (pool-less platform) is remembered, so serial
      degradation does not retry the expensive probe on every call;
    * a pool that closed itself (a worker died mid-task) is *replaced* on
      the next :meth:`get` — one crash propagates as
      :class:`WorkerError`, it does not poison the owner forever;
    * ``task_hint`` caps creation at the useful size, so three pending
      points never fork a 64-core pool — and a later call with more work
      **grows** the pool (replacing the small one) rather than staying
      pinned to the first call's size.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers
        self._runtime: Optional[ParallelRuntime] | bool = None

    @property
    def runtime(self) -> Optional[ParallelRuntime]:
        """The currently live pool, without creating one."""
        if isinstance(self._runtime, ParallelRuntime) and not self._runtime.closed:
            return self._runtime
        return None

    def get(self, task_hint: Optional[int] = None) -> Optional[ParallelRuntime]:
        """The live pool, creating / growing / replacing one as needed."""
        global _warned_single_core
        if self._runtime is False:
            return None  # platform has no pools; don't retry the probe
        if (os.cpu_count() or 1) <= 1 and not os.environ.get(FORCE_PARALLEL_ENV):
            # forking workers on a single core only adds IPC overhead; the
            # serial paths are bit-identical, so degrade instead
            if not _warned_single_core:
                _warned_single_core = True
                warnings.warn(
                    "single-core host: --workers degraded to serial execution "
                    f"(set {FORCE_PARALLEL_ENV}=1 to force a pool)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self._runtime = False
            return None
        target = resolve_workers(self.workers)
        if task_hint is not None:
            target = max(1, min(target, task_hint))
        live = self.runtime
        if live is not None and live.workers >= target:
            return live
        # dead pool, or live-but-smaller than this call can use: replace
        # (pools only ever grow; a later small call reuses the big pool)
        self.close()
        self._runtime = ParallelRuntime.create(target) or False
        runtime = self.runtime
        if runtime is not None:
            # pre-warm the kernel backend once per worker, so JIT compilation
            # (numba backend) never lands inside a timed or per-layer task
            from repro.kernels import resolve_backend_name

            runtime.broadcast("kernels.configure",
                              {"backend": resolve_backend_name()})
        return runtime

    def close(self) -> None:
        """Stop the pool; the next :meth:`get` may create a fresh one."""
        if isinstance(self._runtime, ParallelRuntime):
            self._runtime.close()
        self._runtime = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
