"""Persistent process pool with ordered results and serial degradation.

``ProcessPoolExecutor`` pays its construction cost on every sweep call and
re-pickles every payload from scratch; :class:`ParallelRuntime` instead keeps
**persistent workers** alive across calls, so per-worker state (engines,
simulators, broadcast networks) is built once and reused, and large tensors
travel through :mod:`repro.runtime.shm` instead of pickle.

Design points:

* **per-worker inboxes** — tasks are assigned round-robin by index, which
  makes result assembly deterministic and lets :meth:`broadcast` address
  every worker exactly once (context distribution);
* **ordered assembly** — :meth:`map` returns results in submission order
  regardless of completion order;
* **error propagation** — a task exception is re-raised in the parent as
  :class:`WorkerError` carrying the worker-side traceback; a *dead* worker
  (hard crash, ``os._exit``) is detected and reported instead of hanging;
* **graceful degradation** — :meth:`ParallelRuntime.create` returns ``None``
  on platforms that cannot provide process pools (missing semaphores,
  restricted sandboxes); callers fall back to bit-identical serial paths;
* **fault injection** — workers consult a :class:`~repro.runtime.faults.
  FaultPlan` (``$REPRO_FAULT_SPEC``) at every task boundary, so crash/hang
  recovery is reproducibly testable;
* **orphan cleanup** — an :mod:`atexit` hook closes every still-open pool
  when the parent exits without :meth:`close`, so crashed CLIs never leave
  worker processes behind.

This class is the *mechanism* layer: it detects death but treats it as
fatal for the call.  :class:`repro.runtime.supervisor.SupervisedRuntime`
builds retry/respawn/quarantine *policy* on top; :class:`LazyRuntime`
hands consumers a supervised pool by default.
"""

from __future__ import annotations

import atexit
import os
import time
import traceback
import warnings
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import trace as obs_trace
from repro.runtime.faults import FaultPlan, resolve_fault_plan
from repro.runtime.tasks import TASKS

#: set to force pool creation on single-core hosts (tests, debugging)
FORCE_PARALLEL_ENV = "REPRO_FORCE_PARALLEL"

#: one single-core degradation warning per process, not one per consumer
_warned_single_core = False

#: seconds between worker-liveness checks while draining results
_POLL_SECONDS = 0.1

#: seconds to wait for a worker to exit after the shutdown sentinel
_JOIN_SECONDS = 5.0

#: pools not yet closed — swept by the atexit hook below
_LIVE_RUNTIMES: "weakref.WeakSet[ParallelRuntime]" = weakref.WeakSet()
_atexit_registered = False


def _close_leaked_runtimes() -> None:  # pragma: no cover - exit-path hook
    """Close pools the owner never closed (atexit; owner process only)."""
    for runtime in list(_LIVE_RUNTIMES):
        if runtime._owner_pid != os.getpid():
            continue  # forked child inheriting the set must not reap them
        try:
            runtime.close()
        except Exception:
            pass


def _track_runtime(runtime: "ParallelRuntime") -> None:
    global _atexit_registered
    if not _atexit_registered:
        _atexit_registered = True
        atexit.register(_close_leaked_runtimes)
    _LIVE_RUNTIMES.add(runtime)


class WorkerError(RuntimeError):
    """A task failed (or its worker died) in the parallel runtime."""


def resolve_workers(workers: Optional[int]) -> int:
    """Requested worker count -> effective count (``None`` = CPU count)."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _worker_main(worker_id: int, inbox, writer, fault_spec: Optional[str]) -> None:
    """Worker loop: run registered tasks against a persistent context.

    Results travel over a **per-worker pipe**, not a shared queue.  A shared
    ``multiprocessing.Queue`` writes through a feeder thread holding a lock
    shared by every worker — a worker dying mid-write (``os._exit``, OOM
    kill, supervisor terminate) leaves that lock held forever and wedges
    the whole pool.  With one pipe per worker, a death can only ever
    corrupt that worker's own stream; the parent sees EOF, discards the
    pipe, and the rest of the pool is untouched.  ``Connection.send``
    pickles *before* writing, so a pickling error surfaces through the
    normal error path instead of a torn frame.

    Result messages are 6-tuples ``(worker_id, task_id, attempt, ok,
    value, obs)``: the last slot carries this worker's observability
    payload (completed spans + metrics delta) when tracing is enabled and
    ``None`` otherwise.  Shipping per task (rather than at shutdown) is
    what lets a merged trace survive worker crash/respawn — only the
    in-flight task's spans die with the worker.
    """
    plan = FaultPlan.parse(fault_spec) if fault_spec else FaultPlan.none()
    obs_trace.worker_init(worker_id)
    context: Dict[str, Any] = {"worker_id": worker_id}
    while True:
        message = inbox.get()
        if message is None:
            break
        task_id, attempt, name, payload = message
        try:
            # fault injection happens at the task boundary, before any work:
            # a crash here models an OOM-kill, a hang models a wedged worker,
            # and neither can leave a half-written result behind
            plan.inject(task_id, attempt)
            fn = TASKS[name]
            with obs_trace.span("task:" + name, task_id=task_id,
                                attempt=attempt):
                result = fn(payload, context)
            writer.send((worker_id, task_id, attempt, True, result,
                         obs_trace.ship()))
        except BaseException as error:  # noqa: BLE001 - forwarded to parent
            detail = f"{type(error).__name__}: {error}\n{traceback.format_exc()}"
            try:
                writer.send((worker_id, task_id, attempt, False, detail,
                             obs_trace.ship()))
            except Exception:  # pragma: no cover - pipe gone: die visibly
                os._exit(1)


class ParallelRuntime:
    """Persistent worker processes executing registered tasks."""

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        fault_plan: "FaultPlan | str | None" = None,
    ) -> None:
        import multiprocessing as mp

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        # fork keeps worker startup cheap and inherits registered tasks;
        # other platforms fall back to their default start method
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self.workers = workers
        self.start_method = start_method
        self.fault_plan = resolve_fault_plan(fault_plan)
        self._inboxes: List[Any] = [None] * workers
        self._readers: List[Any] = [None] * workers
        self._processes: List[Any] = [None] * workers
        self._closed = False
        self._task_counter = 0
        self._owner_pid = os.getpid()
        for worker_id in range(workers):
            self._spawn_worker(worker_id)
        _track_runtime(self)

    def _spawn_worker(self, worker_id: int) -> None:
        """(Re)start worker ``worker_id`` with a **fresh** inbox.

        A fresh inbox on respawn is load-bearing: tasks queued to the dead
        incarnation must not be consumed by the new one — the supervisor
        re-dispatches them from its own bookkeeping, so a stale queue would
        mean double execution.
        """
        inbox = self._ctx.SimpleQueue()
        reader, writer = self._ctx.Pipe(duplex=False)
        spec = self.fault_plan.describe() or None
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, inbox, writer, spec),
            daemon=True,
            name=f"repro-runtime-{worker_id}",
        )
        process.start()
        # the child now holds the only writer, so worker death surfaces as
        # EOF on the reader — event-driven, not poll-driven, detection
        writer.close()
        self._close_reader(worker_id)
        self._inboxes[worker_id] = inbox
        self._readers[worker_id] = reader
        self._processes[worker_id] = process

    def _close_reader(self, worker_id: int) -> None:
        reader = self._readers[worker_id]
        if reader is not None:
            try:
                reader.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._readers[worker_id] = None

    # ------------------------------------------------------------------ #
    # construction with degradation
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        workers: Optional[int] = None,
        fault_plan: "FaultPlan | str | None" = None,
    ) -> Optional["ParallelRuntime"]:
        """A runtime, or ``None`` where the platform cannot provide one."""
        count = resolve_workers(workers)
        try:
            return cls(count, fault_plan=fault_plan)
        except (OSError, ValueError, RuntimeError, ImportError):
            # restricted sandboxes (no semaphores / fork) — callers degrade
            # to their serial paths, which produce identical results
            return None

    # ------------------------------------------------------------------ #
    # task dispatch
    # ------------------------------------------------------------------ #
    def map(self, task: str, payloads: Sequence[Any]) -> List[Any]:
        """Run ``task`` over ``payloads``; results in submission order.

        Payload ``i`` goes to worker ``i % workers`` — a deterministic
        assignment, so repeated calls with the same payloads exercise the
        same worker-local caches.
        """
        self._check_dispatch(task)
        payloads = list(payloads)
        # reserve the id range *before* submitting: if a payload fails to
        # pickle mid-loop, already-submitted tasks must never share an id
        # with a later call (the drain filter relies on disjoint ranges)
        first_id = self._task_counter
        self._task_counter += len(payloads)
        for index, payload in enumerate(payloads):
            self._inboxes[index % self.workers].put(
                (first_id + index, 0, task, payload))
        return self._drain(first_id, len(payloads))

    def broadcast(self, task: str, payload: Any) -> List[Any]:
        """Run one task on *every* worker (context distribution); ordered."""
        self._check_dispatch(task)
        first_id = self._task_counter
        self._task_counter += self.workers
        for offset, inbox in enumerate(self._inboxes):
            inbox.put((first_id + offset, 0, task, payload))
        return self._drain(first_id, self.workers)

    def _poll_results(
        self, timeout: float
    ) -> Tuple[List[Tuple[int, int, int, bool, Any]], List[int]]:
        """One wait on every worker pipe -> (messages, EOF'd worker ids).

        Messages already buffered on a pipe are drained *before* its EOF is
        reported, so a worker that finished a task and then died never loses
        the finished result.

        This is the single funnel every consumer (plain ``_drain`` and the
        supervisor's loops) receives results through, so the worker
        observability payload is absorbed here — merged into the parent's
        recorder/metrics registry — and stripped, leaving the 5-tuples the
        policy layer above was written against.
        """
        from multiprocessing import connection

        readers = [r for r in self._readers if r is not None and not r.closed]
        messages: List[Tuple[int, int, int, bool, Any]] = []
        dead: List[int] = []
        if not readers:
            time.sleep(timeout)
            return messages, dead
        for ready in connection.wait(readers, timeout):
            worker_id = self._readers.index(ready)
            try:
                while ready.poll():
                    message = ready.recv()
                    obs_trace.absorb(message[5])
                    messages.append(message[:5])
            except (EOFError, OSError):
                dead.append(worker_id)
        return messages, dead

    def _drain(self, first_id: int, count: int) -> List[Any]:
        """Collect ``count`` results, raising on task errors or dead workers."""
        results: List[Any] = [None] * count
        received = 0
        failure: Optional[str] = None
        while received < count:
            messages, eof = self._poll_results(_POLL_SECONDS)
            for _, task_id, _, ok, value in messages:
                if not (first_id <= task_id < first_id + count):
                    continue  # stray result from an aborted earlier call
                received += 1
                if ok:
                    results[task_id - first_id] = value
                elif failure is None:
                    failure = str(value)
            if received >= count:
                break
            dead = [self._processes[w].name for w in eof]
            if not dead:
                dead = [p.name for p in self._processes
                        if p is not None and not p.is_alive()]
            if dead:
                self._shutdown(force=True)
                raise WorkerError(
                    "worker process died while running tasks: "
                    + ", ".join(sorted(set(dead)))
                ) from None
        if failure is not None:
            raise WorkerError(f"runtime task failed in worker:\n{failure}")
        return results

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once the pool stopped (explicitly or after a worker died)."""
        return self._closed

    def _check_dispatch(self, task: str) -> None:
        if self._closed:
            raise WorkerError("runtime is closed")
        if task not in TASKS:
            raise WorkerError(f"unknown runtime task {task!r}")

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._shutdown(force=False)

    def _shutdown(self, force: bool) -> None:
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        for process in self._processes:
            if process is None:
                continue
            process.join(0.0 if force else _JOIN_SECONDS)
            if process.is_alive():
                process.terminate()
                process.join(_JOIN_SECONDS)
        for worker_id in range(self.workers):
            self._close_reader(worker_id)

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


class LazyRuntime:
    """Create-once/release-often ownership of a supervised runtime pool.

    The shared lifecycle every runtime consumer (sweep executor, schedule
    optimizer, network runner, functional engine, evaluation server) needs:

    * the pool is created on first :meth:`get` and **reused across calls**
      (that is what makes the workers persistent);
    * a pool that closed itself is *replaced* on the next :meth:`get` —
      one fatal crash does not poison the owner forever;
    * ``task_hint`` caps creation at the useful size, so three pending
      points never fork a 64-core pool — and a later call with more work
      **grows** the pool (replacing the small one) rather than staying
      pinned to the first call's size; replacing a *live* pool emits a
      one-line warning so double-spawns are visible, never silent;
    * a per-call ``workers`` override sizes the pool for that caller
      without rebuilding it when callers with different ``--workers``
      alternate — the pool only ever grows to the largest request;
    * a live pool whose fault plan no longer matches ``$REPRO_FAULT_SPEC``
      is replaced, so a chaos-injected pool never leaks into clean runs
      (or vice versa).

    Pools handed out are :class:`~repro.runtime.supervisor.
    SupervisedRuntime` instances, so worker crashes, hangs and poison
    tasks are retried/respawned/quarantined instead of aborting the run.
    An explicit ``policy`` overrides the environment-derived retry policy.

    Most consumers should hold the process-wide handle from
    :func:`shared_runtime` and detach with :meth:`release` — only owners
    of a private handle (tests, benchmarks) call :meth:`close` directly.
    """

    def __init__(self, workers: Optional[int] = None, policy=None) -> None:
        self.workers = workers
        self.policy = policy
        self._runtime: Optional[ParallelRuntime] = None

    @property
    def runtime(self) -> Optional[ParallelRuntime]:
        """The currently live pool, without creating one."""
        if isinstance(self._runtime, ParallelRuntime) and not self._runtime.closed:
            return self._runtime
        return None

    def get(self, task_hint: Optional[int] = None,
            workers: Optional[int] = None) -> Optional[ParallelRuntime]:
        """The live pool, creating / growing / replacing one as needed."""
        global _warned_single_core
        if (os.cpu_count() or 1) <= 1 and not os.environ.get(FORCE_PARALLEL_ENV):
            # forking workers on a single core only adds IPC overhead; the
            # serial paths are bit-identical, so degrade instead (checked
            # per call, not memoised: a shared process-wide handle must not
            # stay poisoned once the condition changes)
            if not _warned_single_core:
                _warned_single_core = True
                warnings.warn(
                    "single-core host: --workers degraded to serial execution "
                    f"(set {FORCE_PARALLEL_ENV}=1 to force a pool)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return None
        target = resolve_workers(workers if workers is not None else self.workers)
        if task_hint is not None:
            target = max(1, min(target, task_hint))
        live = self.runtime
        plan_current = resolve_fault_plan(None).describe()
        if live is not None:
            if live.workers >= target \
                    and live.fault_plan.describe() == plan_current:
                return live
            reason = ("fault plan changed"
                      if live.fault_plan.describe() != plan_current
                      else f"growing to {target} workers for this call")
            warnings.warn(
                f"replacing live {live.workers}-worker pool ({reason})",
                RuntimeWarning,
                stacklevel=2,
            )
        # dead pool, or live-but-unsuitable for this call: replace (pools
        # only ever grow; a later small call reuses the big pool)
        self.close()
        # create() resolves through the MRO, so SupervisedRuntime instances
        # come out of ParallelRuntime.create's degradation funnel
        from repro.runtime.supervisor import SupervisedRuntime

        self._runtime = SupervisedRuntime.create(target)
        runtime = self.runtime
        if runtime is not None:
            if self.policy is not None and hasattr(runtime, "policy"):
                runtime.policy = self.policy
            # pre-warm the kernel backend once per worker, so JIT compilation
            # (numba backend) never lands inside a timed or per-layer task
            from repro.kernels import resolve_backend_name

            runtime.broadcast("kernels.configure",
                              {"backend": resolve_backend_name()})
        return runtime

    def close(self) -> None:
        """Stop the pool; the next :meth:`get` may create a fresh one."""
        if isinstance(self._runtime, ParallelRuntime):
            self._runtime.close()
        self._runtime = None

    def release(self) -> None:
        """Consumer detach: closes private handles, keeps the shared one.

        Every pool consumer calls this from its own ``close()``.  A private
        handle dies with its consumer exactly as before; the process-wide
        :func:`shared_runtime` handle stays up for the next consumer (the
        atexit sweep reaps it at interpreter exit).
        """
        if self is not _shared_runtime:
            self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


#: the process-wide pool handle (created on first use, re-keyed after fork)
_shared_runtime: Optional[LazyRuntime] = None
_shared_runtime_pid: Optional[int] = None


def shared_runtime() -> LazyRuntime:
    """The single process-wide :class:`LazyRuntime` every consumer shares.

    Routing the sweep executor, schedule optimizer, network runner,
    functional engine and the evaluation server through one handle means
    one process never hosts duplicate worker pools: alternating consumers
    (or ``--workers`` values) reuse the existing pool when it is big
    enough and grow it — with a warning — when it is not.  A forked child
    gets a fresh handle; the parent's pool belongs to the parent.
    """
    global _shared_runtime, _shared_runtime_pid
    if _shared_runtime is None or _shared_runtime_pid != os.getpid():
        _shared_runtime = LazyRuntime()
        _shared_runtime_pid = os.getpid()
    return _shared_runtime
