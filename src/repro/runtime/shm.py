"""Zero-copy shared-memory tensors for the parallel runtime.

Multi-hundred-MB VGG tensors must never cross the process boundary through
pickle: a :class:`SharedTensor` copies the array once into a
``multiprocessing.shared_memory`` segment owned by the parent, and workers
attach to the segment by name — the picklable handle is a few dozen bytes
regardless of tensor size, and writes from any process are visible to all
(which is how workers assemble one ofmap tensor block by block).

Platforms without ``/dev/shm`` (or without the POSIX primitives the module
needs) degrade transparently: :meth:`SharedTensor.create` falls back to an
*inline* handle that carries the array through pickle.  Results are identical
either way — only the transfer cost differs — which preserves the serial
degradation guarantee of the rest of the runtime.
"""

from __future__ import annotations

import atexit
import os
import weakref
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

try:  # restricted sandboxes may lack the shared-memory primitives entirely
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform dependent
    _shared_memory = None

#: owner-side tensors not yet unlinked — swept by the atexit hook so a
#: parent crashing between create() and unlink() never leaks /dev/shm
#: segments past process exit
_OWNED: "weakref.WeakSet[SharedTensor]" = weakref.WeakSet()
_atexit_registered = False


def _unlink_leaked_tensors() -> None:  # pragma: no cover - exit-path hook
    """Unlink segments the owner never unlinked (atexit; owner side only)."""
    for tensor in list(_OWNED):
        if getattr(tensor, "_owner_pid", None) != os.getpid():
            continue  # forked child inheriting the set must not unlink
        try:
            tensor.unlink()
        except Exception:
            pass


def _track_owned(tensor: "SharedTensor") -> None:
    global _atexit_registered
    if not _atexit_registered:
        _atexit_registered = True
        atexit.register(_unlink_leaked_tensors)
    tensor._owner_pid = os.getpid()
    _OWNED.add(tensor)


def _attach(name: str):
    """Attach to an existing segment without claiming tracker ownership.

    The segment is owned (created and unlinked) by the parent process; on
    Python < 3.13 every attach also registers the name with the attaching
    process's resource tracker (bpo-39959), which then warns about — and
    tries to double-unlink — "leaked" segments at worker exit.  3.13+ has
    ``track=False`` for exactly this; older versions get the equivalent by
    unregistering right after the attach.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    # suppress (rather than undo) the registration: unregistering would
    # race the owner's unlink when worker and parent share one tracker
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(eq=False)  # identity semantics; hashable for the WeakSet above
class SharedTensor:
    """Picklable handle to a NumPy array living in shared memory.

    Exactly one of ``name`` (shared-memory segment) or ``inline`` (pickled
    fallback payload) is set.  The parent that called :meth:`create` owns the
    segment and must call :meth:`unlink` when every consumer is done;
    attaching processes call :meth:`open` / :meth:`close` around their use.
    Owner-side handles are additionally swept by an ``atexit`` hook, so an
    owner exiting without :meth:`unlink` does not leak the segment.
    """

    shape: Tuple[int, ...]
    dtype: str
    name: Optional[str] = None
    inline: Optional[np.ndarray] = None
    #: live segment objects (parent: the created segment; worker: attachments)
    _segments: List[object] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------ #
    # creation (parent side)
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, array: np.ndarray) -> "SharedTensor":
        """Copy ``array`` into a fresh shared segment (inline on fallback)."""
        array = np.ascontiguousarray(array)
        if _shared_memory is not None and array.nbytes > 0:
            try:
                segment = _shared_memory.SharedMemory(create=True,
                                                      size=array.nbytes)
            except (OSError, ValueError):  # no /dev/shm, quota, sandbox…
                segment = None
            if segment is not None:
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=segment.buf)
                view[:] = array
                handle = cls(shape=array.shape, dtype=str(array.dtype),
                             name=segment.name)
                handle._segments.append(segment)
                _track_owned(handle)
                return handle
        return cls(shape=array.shape, dtype=str(array.dtype),
                   inline=array.copy())

    @classmethod
    def zeros(cls, shape: Tuple[int, ...], dtype: str = "float64") -> "SharedTensor":
        """A zero-filled shared tensor (e.g. an ofmap assembly buffer)."""
        return cls.create(np.zeros(shape, dtype=np.dtype(dtype)))

    # ------------------------------------------------------------------ #
    # access (both sides)
    # ------------------------------------------------------------------ #
    def open(self) -> np.ndarray:
        """An ndarray over the shared segment (attaches when needed).

        In the creating process this reuses the original segment; in a worker
        it attaches by name.  The returned array is writable and its writes
        are visible to every attached process.  Call :meth:`close` when done
        (workers) — the array must not be used afterwards.
        """
        if self.name is None:
            assert self.inline is not None
            return self.inline
        if not self._segments:
            assert _shared_memory is not None
            self._segments.append(_attach(self.name))
        segment = self._segments[0]
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                          buffer=segment.buf)  # type: ignore[attr-defined]

    def close(self) -> None:
        """Detach this process's mapping (the segment itself stays alive)."""
        while self._segments:
            segment = self._segments.pop()
            try:
                segment.close()  # type: ignore[attr-defined]
            except (OSError, BufferError):  # pragma: no cover - platform noise
                pass

    def unlink(self) -> None:
        """Destroy the segment (parent side, after every consumer closed)."""
        if self.name is None:
            self.inline = None
            return
        segments = list(self._segments)
        self.close()
        if _shared_memory is not None:
            try:
                segment = segments[0] if segments else _shared_memory.SharedMemory(
                    name=self.name)
                segment.unlink()  # type: ignore[attr-defined]
            except (OSError, FileNotFoundError):  # pragma: no cover - already gone
                pass
        self.name = None

    @property
    def nbytes(self) -> int:
        """Size of the tensor payload in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_segments"] = []  # segments never cross the process boundary
        return state
