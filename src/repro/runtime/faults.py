"""Deterministic, seeded fault injection for the parallel runtime.

Chaos testing is only useful when it is *reproducible*: a crash that shows
up once per hundred CI runs is a flake, a crash that shows up on every run
with ``seed=7`` is a regression test.  A :class:`FaultPlan` therefore maps
``(task_id, attempt)`` — not wall-clock time or PRNG state — to a fault
decision through SHA-256, so the same plan injects exactly the same faults
into exactly the same tasks regardless of scheduling, worker assignment or
machine, and the recovery path of the supervisor
(:mod:`repro.runtime.supervisor`) is exercised identically on every run.

Workers consult the plan at task boundaries (immediately before executing a
task), which models the dominant real failure modes without corrupting
results mid-write:

* ``crash`` — the worker process dies outright (``os._exit``), the moral
  equivalent of an OOM kill or a segfault;
* ``hang``  — the worker stops responding (caught by the supervisor's
  per-task deadline);
* ``delay`` — the worker stalls for ``ms`` milliseconds (latency noise,
  stragglers).

Plans come from the ``REPRO_FAULT_SPEC`` environment variable (inherited by
workers, so one exported variable turns any run into a chaos run) or are
passed explicitly to the pool.  Spec grammar, rules separated by ``;``::

    crash:p=0.2,seed=7;hang:p=0.05,seed=8;delay:p=0.3,ms=20

Each rule takes ``p`` (trigger probability, default 1), ``seed`` (decision
seed, default 0), ``ms`` (delay length, ``delay`` only) and ``attempts``
(inject only while ``attempt < attempts`` — ``attempts=1`` faults every
task's first attempt and lets every retry succeed, the bounded-chaos shape
CI uses).  The first triggering rule wins.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

#: environment variable carrying the fault spec (parent and workers)
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

#: the fault kinds a rule may inject
FAULT_KINDS = ("crash", "hang", "delay")

#: exit code of fault-injected worker crashes (distinguishable from real
#: segfaults / OOM kills in process tables and supervisor logs)
CRASH_EXIT_CODE = 86

#: how long a ``hang`` fault sleeps — far beyond any sane task deadline, so
#: a hung worker is only ever recovered by the supervisor killing it
HANG_SECONDS = 3600.0


class FaultSpecError(ValueError):
    """A fault spec string could not be parsed."""


@dataclass(frozen=True)
class FaultRule:
    """One fault kind with its trigger probability and parameters."""

    kind: str
    probability: float = 1.0
    seed: int = 0
    delay_ms: float = 10.0
    #: inject only while ``attempt < max_attempts`` (``None`` = any attempt);
    #: caps chaos below the supervisor's retry budget so recovery terminates
    max_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.delay_ms < 0:
            raise FaultSpecError(f"delay ms must be >= 0, got {self.delay_ms}")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise FaultSpecError(
                f"attempts cap must be >= 1, got {self.max_attempts}"
            )

    def triggers(self, task_id: int, attempt: int) -> bool:
        """Deterministic trigger decision for one task attempt."""
        if self.max_attempts is not None and attempt >= self.max_attempts:
            return False
        if self.probability <= 0.0:
            return False
        if self.probability >= 1.0:
            return True
        token = f"{self.kind}:{self.seed}:{task_id}:{attempt}".encode("ascii")
        draw = int.from_bytes(hashlib.sha256(token).digest()[:8], "big")
        return draw / float(1 << 64) < self.probability

    def describe(self) -> str:
        """The rule in spec syntax (parse/describe round-trips)."""
        parts = [f"p={self.probability:g}", f"seed={self.seed}"]
        if self.kind == "delay":
            parts.append(f"ms={self.delay_ms:g}")
        if self.max_attempts is not None:
            parts.append(f"attempts={self.max_attempts}")
        return f"{self.kind}:{','.join(parts)}"


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules consulted at every task boundary."""

    rules: Tuple[FaultRule, ...] = ()

    @property
    def empty(self) -> bool:
        """True when the plan can never inject anything."""
        return not any(rule.probability > 0.0 for rule in self.rules)

    def decide(self, task_id: int, attempt: int) -> Optional[FaultRule]:
        """The first rule triggering for this attempt (``None`` = run clean)."""
        for rule in self.rules:
            if rule.triggers(task_id, attempt):
                return rule
        return None

    def inject(self, task_id: int, attempt: int) -> Optional[str]:
        """Consult the plan and *perform* the fault; returns the kind injected.

        ``crash`` does not return.  Called by workers at task boundaries;
        never call this in the parent — quarantined serial re-execution is
        deliberately fault-free, which is what makes the degradation ladder
        terminate.
        """
        rule = self.decide(task_id, attempt)
        if rule is None:
            return None
        if rule.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if rule.kind == "hang":
            time.sleep(HANG_SECONDS)
        else:
            time.sleep(rule.delay_ms / 1000.0)
        return rule.kind

    def describe(self) -> str:
        """The plan in spec syntax (empty string for the empty plan)."""
        return ";".join(rule.describe() for rule in self.rules)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def none(cls) -> "FaultPlan":
        """An explicit no-faults plan (overrides ``$REPRO_FAULT_SPEC``)."""
        return cls(())

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``kind:p=...,seed=...[;kind:...]`` into a plan."""
        rules = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, _, params = chunk.partition(":")
            kwargs = {"kind": kind.strip()}
            for pair in params.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, eq, value = pair.partition("=")
                key = key.strip()
                if not eq:
                    raise FaultSpecError(
                        f"fault parameter {pair!r} is not key=value (in {chunk!r})"
                    )
                try:
                    if key in ("p", "probability"):
                        kwargs["probability"] = float(value)
                    elif key == "seed":
                        kwargs["seed"] = int(value)
                    elif key == "ms":
                        kwargs["delay_ms"] = float(value)
                    elif key == "attempts":
                        kwargs["max_attempts"] = int(value)
                    else:
                        raise FaultSpecError(
                            f"unknown fault parameter {key!r} (in {chunk!r})"
                        )
                except ValueError as error:
                    if isinstance(error, FaultSpecError):
                        raise
                    raise FaultSpecError(
                        f"fault parameter {pair!r} is not numeric (in {chunk!r})"
                    ) from None
            rules.append(FaultRule(**kwargs))
        return cls(tuple(rules))

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "FaultPlan":
        """The plan ``$REPRO_FAULT_SPEC`` describes (empty when unset)."""
        spec = (environ if environ is not None else os.environ).get(FAULT_SPEC_ENV)
        if not spec:
            return cls.none()
        return cls.parse(spec)


def resolve_fault_plan(plan: "FaultPlan | str | None") -> FaultPlan:
    """Normalise a plan argument: ``None`` → env, ``str`` → parsed, plan → itself."""
    if plan is None:
        return FaultPlan.from_env()
    if isinstance(plan, str):
        return FaultPlan.parse(plan)
    return plan
