"""Wire protocol of the evaluation service.

Two halves, both dependency-free:

* **request schemas** — dataclasses whose defaults mirror the CLI's
  argparse defaults exactly, so ``{"network": "alexnet"}`` over HTTP
  means the same evaluation as ``repro run alexnet`` at a shell.
  Validation errors raise :class:`ProtocolError` (→ HTTP 400) with the
  same wording the CLI prints before ``exit 2``.
* **HTTP/1.1 framing** — the minimal subset the service needs
  (``Content-Length`` bodies, keep-alive, chunked responses for
  progress streams), parsed directly off asyncio streams; no external
  HTTP library.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

from repro.analysis.batch import DEFAULT_OBJECTIVES
from repro.core.config import ChainConfig, ClockDomain
from repro.engine.cache import (
    CACHE_SCHEMA,
    canonical_json,
    config_fingerprint,
    workload_fingerprint,
)

__all__ = [
    "DEFAULT_PORT",
    "HttpRequest",
    "MapParams",
    "ProtocolError",
    "RunParams",
    "SweepParams",
    "VerifyParams",
    "chunk",
    "coalesce_key",
    "end_chunks",
    "http_response",
    "parse_params",
    "read_http_request",
    "start_chunked",
]

#: default service port ("repro" → 0x7265 % 56000... just a fixed
#: uncommon port; override with --port / REPRO_SERVE_PORT)
DEFAULT_PORT = 8347

#: request bodies past this size are refused (grids are specs, not data)
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            413: "Payload Too Large", 500: "Internal Server Error"}


class ProtocolError(ValueError):
    """Malformed or invalid request; maps to an HTTP 4xx response."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


# --------------------------------------------------------------------- #
# request schemas (defaults == CLI argparse defaults)
# --------------------------------------------------------------------- #
@dataclass
class RunParams:
    """``POST /v1/run`` — mirrors ``repro run``."""

    network: str = "alexnet"
    batch: int = 4
    engine: str = "analytical"
    mode: Optional[str] = None
    traffic: bool = False
    workers: Optional[int] = None
    algorithm: str = "direct"
    pes: int = 576
    frequency_mhz: float = 700.0


@dataclass
class SweepParams:
    """``POST /v1/sweep`` — mirrors ``repro sweep --grid --json``."""

    network: str = "alexnet"
    grid: str = "pe=128:1152:32,freq=200:1000:50"
    batch: int = 16
    engine: str = "analytical"
    objectives: Tuple[str, ...] = DEFAULT_OBJECTIVES
    metric: str = "gops_per_watt"
    top: Optional[int] = None
    pareto: bool = False
    pes: int = 576
    frequency_mhz: float = 700.0


@dataclass
class MapParams:
    """``POST /v1/map`` — mirrors ``repro map --json``."""

    network: str = "alexnet"
    objective: str = "throughput"
    strategy: str = "anneal"
    batch: int = 16
    seed: int = 2017
    samples: Optional[int] = None
    iterations: Optional[int] = None
    algorithm: str = "direct"
    verify: bool = False
    workers: Optional[int] = None
    pes: int = 576
    frequency_mhz: float = 700.0


@dataclass
class VerifyParams:
    """``POST /v1/verify`` — mirrors ``repro verify --sim functional``."""

    network: str = "tiny"
    seed: int = 2017
    backend: Optional[str] = None
    workers: Optional[int] = None
    algorithm: str = "direct"
    pes: int = 576
    frequency_mhz: float = 700.0


def parse_params(cls, body: Dict[str, Any]):
    """Instantiate a params dataclass from a JSON body, strictly.

    Unknown keys are 400s (a typo silently falling back to a default
    would return the *wrong evaluation* with a 200), and scalar types
    are coerced only in the safe direction (int → float).
    """
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    allowed = {spec.name: spec for spec in fields(cls)}
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ProtocolError(
            f"unknown parameter(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}")
    kwargs: Dict[str, Any] = {}
    for name, value in body.items():
        if name == "objectives":
            if not isinstance(value, (list, tuple)) or not all(
                    isinstance(item, str) for item in value):
                raise ProtocolError("objectives must be a list of strings")
            value = tuple(value)
        elif name == "frequency_mhz" and isinstance(value, int):
            value = float(value)
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as error:  # pragma: no cover - dataclass re-raise
        raise ProtocolError(str(error)) from error


def config_of(params) -> ChainConfig:
    """The base :class:`ChainConfig` a request evaluates against."""
    return ChainConfig(num_pes=params.pes,
                       clock=ClockDomain(params.frequency_mhz * 1e6))


def coalesce_key(engine: str, network, base: ChainConfig) -> str:
    """Compatibility fingerprint: requests sharing it may share a batch.

    Same shape as the cache keys (engine name, workload fingerprint,
    base-config fingerprint, cache schema) — two requests with equal
    keys are guaranteed to evaluate through the same evaluator state, so
    concatenating their grids cannot change any per-point result.
    """
    return canonical_json({
        "schema": CACHE_SCHEMA,
        "engine": engine,
        "workload": workload_fingerprint(network),
        "base": config_fingerprint(base),
    })


# --------------------------------------------------------------------- #
# HTTP framing
# --------------------------------------------------------------------- #
@dataclass
class HttpRequest:
    """One parsed request off a keep-alive connection."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> Dict[str, Any]:
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise ProtocolError(f"invalid JSON body: {error}") from error


async def read_http_request(
        reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {line!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as error:
        raise ProtocolError("invalid Content-Length") from error
    if length > MAX_BODY_BYTES:
        raise ProtocolError(
            f"body of {length} bytes exceeds {MAX_BODY_BYTES}", status=413)
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def http_response(status: int, body: bytes,
                  content_type: str = "application/json") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n")
    return head.encode("latin-1") + body


def start_chunked(status: int = 200,
                  content_type: str = "application/x-ndjson") -> bytes:
    """Header block of a chunked progress-stream response."""
    reason = _REASONS.get(status, "Unknown")
    return (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            "Transfer-Encoding: chunked\r\n"
            "\r\n").encode("latin-1")


def chunk(event: Dict[str, Any]) -> bytes:
    """One JSON-line event as an HTTP chunk."""
    data = (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


def end_chunks() -> bytes:
    return b"0\r\n\r\n"
