"""JSON response payloads shared by the CLI and the evaluation server.

The service promises byte-identical responses to the equivalent
``repro <command> --json`` invocation.  Rather than asserting that with
tests alone, the payload construction itself is shared: the CLI handlers
and the server routes both call these builders, so the two surfaces
cannot drift.  Everything here is synchronous and asyncio-free.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional, Tuple

from repro.analysis.batch import HIGHER_IS_BETTER

__all__ = [
    "GRID_ENGINE_UPGRADES",
    "dumps",
    "grid_payload",
    "map_payload",
    "reduce_grid_result",
    "run_payload",
    "upgrade_grid_engine",
    "verify_payload",
]

#: the columnar engines are numerically identical to their scalar
#: counterparts; dense grids dispatch to them in either fidelity mode
GRID_ENGINE_UPGRADES = {
    "analytical": "analytical-batch",
    "analytical-detailed": "analytical-batch-detailed",
}


def upgrade_grid_engine(name: str) -> str:
    """Engine actually used for a dense-grid sweep."""
    return GRID_ENGINE_UPGRADES.get(name, name)


def dumps(payload: Dict[str, Any]) -> str:
    """The one JSON serialisation both surfaces print/transmit."""
    return json.dumps(payload, indent=2, sort_keys=True)


def reduce_grid_result(result, objectives: Tuple[str, ...], metric: str,
                       top: Optional[int], pareto: bool):
    """Frontier/top-K reduction of a grid sweep → ``(pareto, top)`` results.

    Higher-is-better columns are negated for the frontier and ranked
    descending for top-K, so "best" always means best; with no reducer
    requested, the best points by the default metric are reported.
    """
    maximized = tuple(name for name in objectives if name in HIGHER_IS_BETTER)
    pareto_result = (result.pareto(objectives=objectives, maximize=maximized)
                     if pareto else None)
    rank_descending = metric in HIGHER_IS_BETTER
    top_result = (result.top_k(metric, top, maximize=rank_descending)
                  if top else None)
    if pareto_result is None and top_result is None:
        top_result = result.top_k(metric, min(10, result.n_points),
                                  maximize=rank_descending)
    return pareto_result, top_result


def grid_payload(grid_spec: str, engine: str, network: str, result,
                 pareto, top, objectives: Tuple[str, ...],
                 metric: str) -> Dict[str, Any]:
    """``sweep --grid --json`` response body."""
    payload: Dict[str, Any] = {
        "grid": grid_spec,
        "engine": engine,
        "network": network,
        "n_points": result.n_points,
    }
    if pareto is not None:
        payload["pareto"] = {"objectives": list(objectives),
                             "points": pareto.rows()}
    if top is not None:
        payload["top"] = {"metric": metric, "points": top.rows()}
    return payload


def run_payload(record, traffic=None) -> Dict[str, Any]:
    """``run --json`` response body."""
    payload = record.to_json_dict()
    if traffic is not None:
        payload["traffic_mb"] = traffic.table()
    return payload


def map_payload(schedule, algorithm_mode: str,
                verification=None) -> Dict[str, Any]:
    """``map --json`` response body."""
    payload = schedule.to_json_dict()
    payload["algorithm_mode"] = algorithm_mode
    # flattened per-layer choice table: what the search actually picked,
    # in a shape that is directly inspectable and diffable in CI (the
    # nested layers/baseline records carry the full metric vectors)
    payload["chosen"] = {
        entry.layer_name: {
            "algorithm": entry.candidate.algorithm,
            "primitives": entry.candidate.primitives,
            "stripe_height": entry.candidate.stripe_height,
            "chunk": entry.candidate.chunk,
            "interleave": entry.candidate.interleave,
        }
        for entry in schedule.layers
    }
    if verification is not None:
        payload["verification"] = {
            "passed": verification.passed,
            "max_abs_error": verification.max_abs_error,
            "tolerance": verification.tolerance,
            "layers": [
                {
                    "layer": entry.layer_name,
                    "algorithm": entry.candidate.algorithm,
                    "max_abs_error": entry.max_abs_error,
                    "bit_identical": entry.bit_identical,
                    "covers": list(entry.covers),
                    "tolerance": (entry.tolerance
                                  if entry.tolerance is not None
                                  else verification.tolerance),
                }
                for entry in verification.layers
            ],
        }
    return payload


def verify_payload(result) -> Dict[str, Any]:
    """``verify`` response body (the CLI prints the text report; the
    service also ships the structured stage table)."""
    return {
        "network": result.network,
        "backend": result.backend,
        "seed": result.seed,
        "passed": result.passed,
        "max_abs_error": result.max_abs_error,
        "tolerance": result.tolerance,
        "chain_cycles_estimate": result.chain_cycles_estimate,
        "stats": dataclasses.asdict(result.stats),
        "stages": [stage_event(stage) for stage in result.stages],
        "report": result.describe(),
    }


def stage_event(stage) -> Dict[str, Any]:
    """One verification stage as a progress-stream event body."""
    return {
        "stage": stage.name,
        "kind": stage.kind,
        "out_shape": list(stage.out_shape),
        "max_abs_error": stage.max_abs_error,
        "windows_kept": stage.windows_kept,
        "algorithm": stage.algorithm,
    }
