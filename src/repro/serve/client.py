"""Clients for the evaluation service.

:class:`ServeClient` is the blocking client ``repro request`` uses —
plain ``http.client`` over a keep-alive connection, with JSON-line
chunked progress streams surfaced through a callback.
:func:`request_json` is a minimal asyncio client (one request per
connection) for concurrent tests and the throughput benchmark; it
returns the raw response body so bit-identity can be asserted on the
exact bytes the server produced.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any, Callable, Dict, Optional, Tuple

from repro.serve.protocol import DEFAULT_PORT

__all__ = ["ServeClient", "ServeError", "request_json"]


class ServeError(RuntimeError):
    """Non-2xx response (or an ``error`` event on a progress stream)."""

    def __init__(self, message: str, status: int = 500) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """Blocking JSON client on one keep-alive connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: float = 600.0) -> None:
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _send(self, method: str, path: str,
              payload: Optional[Dict[str, Any]]) -> http.client.HTTPResponse:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        self._conn.request(method, path, body=body, headers=headers)
        return self._conn.getresponse()

    def call(self, path: str,
             payload: Optional[Dict[str, Any]] = None,
             method: str = "POST") -> Dict[str, Any]:
        """One plain JSON request/response."""
        response = self._send(method, path, payload)
        data = response.read()
        parsed = json.loads(data.decode("utf-8")) if data else {}
        if response.status != 200:
            raise ServeError(parsed.get("error", data.decode("utf-8", "replace")),
                             status=response.status)
        return parsed

    def stream(self, path: str, payload: Dict[str, Any],
               on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
               ) -> Tuple[Dict[str, Any], int]:
        """A progress-streamed request → ``(result_payload, status)``.

        Every non-final event is passed to ``on_event``;
        ``http.client`` undoes the chunked transfer encoding, so the
        stream is plain JSON lines here.
        """
        response = self._send("POST", path, payload)
        if response.status != 200:
            data = response.read()
            try:
                message = json.loads(data.decode("utf-8")).get("error", "")
            except ValueError:
                message = data.decode("utf-8", "replace")
            raise ServeError(message, status=response.status)
        result: Optional[Tuple[Dict[str, Any], int]] = None
        while True:
            line = response.readline()
            if not line:
                break
            event = json.loads(line.decode("utf-8"))
            kind = event.get("event")
            if kind == "result":
                result = (event["payload"], int(event.get("status", 0)))
            elif kind == "error":
                raise ServeError(event.get("error", "server error"),
                                 status=int(event.get("status", 500)))
            elif on_event is not None:
                on_event(event)
        if result is None:
            raise ServeError("stream ended without a result event")
        return result

    # convenience verbs ------------------------------------------------- #
    def health(self) -> Dict[str, Any]:
        return self.call("/v1/health", method="GET")

    def metrics(self) -> Dict[str, float]:
        return self.call("/v1/metrics", method="GET")["metrics"]

    def run(self, **params: Any) -> Dict[str, Any]:
        return self.call("/v1/run", params)

    def sweep(self, **params: Any) -> Dict[str, Any]:
        return self.call("/v1/sweep", params)

    def map(self, on_event: Optional[Callable] = None,
            **params: Any) -> Tuple[Dict[str, Any], int]:
        return self.stream("/v1/map", params, on_event)

    def verify(self, on_event: Optional[Callable] = None,
               **params: Any) -> Tuple[Dict[str, Any], int]:
        return self.stream("/v1/verify", params, on_event)


async def request_json(host: str, port: int, path: str,
                       payload: Optional[Dict[str, Any]] = None,
                       method: str = "POST") -> Tuple[int, bytes]:
    """One asyncio request → ``(status, raw body bytes)``.

    Opens a fresh ``Connection: close`` connection per call so hundreds
    of these can be in flight at once from one event loop — exactly the
    concurrent-client shape the coalescing window is built for.  The
    body is returned verbatim (chunked streams are de-chunked).
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        chunked = False
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if (name.strip().lower() == "transfer-encoding"
                    and "chunked" in value.lower()):
                chunked = True
        if not chunked:
            return status, await reader.read()
        parts = []
        while True:
            size_line = await reader.readline()
            size = int(size_line.strip() or b"0", 16)
            if size == 0:
                break
            parts.append(await reader.readexactly(size))
            await reader.readline()  # chunk's trailing CRLF
        return status, b"".join(parts)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
