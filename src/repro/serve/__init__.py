"""Evaluation-as-a-service layer: ``repro serve`` / ``repro request``.

The batch evaluator scores millions of design points per second, but the
CLI feeds it one invocation at a time.  This package turns the same stack
into a long-running service:

* :mod:`repro.serve.server` — stdlib-``asyncio`` HTTP/1.1 JSON server
  accepting concurrent ``run``/``sweep``/``map``/``verify`` requests;
* :mod:`repro.serve.coalesce` — micro-batching window that merges
  compatible sweep requests into one columnar ``evaluate_batch`` call and
  scatters per-request slices back (float-bit-identical to evaluating
  each request alone);
* :mod:`repro.serve.payloads` — response builders shared with the CLI,
  so a coalesced response is byte-identical to ``repro <cmd> --json``;
* :mod:`repro.serve.protocol` — request schemas with CLI-matching
  defaults, plus the minimal HTTP framing;
* :mod:`repro.serve.client` — blocking and asyncio clients
  (``repro request`` uses the blocking one).

Attributes resolve lazily so importing the package (e.g. for the CLI's
payload builders) does not drag in the server module.
"""

from importlib import import_module

__all__ = [
    "Coalescer",
    "DEFAULT_PORT",
    "EvalServer",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "merge_grids",
    "request_json",
    "scatter_result",
]

_EXPORTS = {
    "Coalescer": "repro.serve.coalesce",
    "merge_grids": "repro.serve.coalesce",
    "scatter_result": "repro.serve.coalesce",
    "DEFAULT_PORT": "repro.serve.protocol",
    "ProtocolError": "repro.serve.protocol",
    "EvalServer": "repro.serve.server",
    "ServeClient": "repro.serve.client",
    "ServeError": "repro.serve.client",
    "request_json": "repro.serve.client",
}


def __getattr__(name: str):
    try:
        module = import_module(_EXPORTS[name])
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(module, name)
