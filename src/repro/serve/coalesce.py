"""Request coalescing: merge compatible sweeps into one columnar call.

The batch evaluator's throughput comes from array width — scoring one
point costs nearly as much as scoring thousands.  The coalescer exploits
that: requests arriving within a short micro-batch window whose grids
are *compatible* (same coalesce key — engine fingerprint, network
workload, base config and cache schema) are concatenated into a single
:class:`~repro.analysis.batch.DesignGrid`, scored by **one**
``evaluate_batch`` call, and sliced back per request.

Because the batch evaluator is purely elementwise per design point,
concatenate → evaluate → slice is float-bit-identical to evaluating each
request's grid alone; the scatter step uses
:meth:`~repro.analysis.batch.BatchSweepResult.take` so even column
dtypes survive untouched.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Deque, Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.batch import BatchSweepResult, DesignGrid
from repro.obs import metrics as obs_metrics

__all__ = ["Coalescer", "merge_grids", "scatter_result"]

#: micro-batch window: how long the first request of a batch waits for
#: company before the batch is flushed (seconds)
DEFAULT_WINDOW_S = 0.004

#: flush early once a batch holds this many points / requests
DEFAULT_MAX_POINTS = 262_144
DEFAULT_MAX_REQUESTS = 256

_M_BATCHES = obs_metrics.counter("serve.coalesced_batches")
_M_COALESCED = obs_metrics.counter("serve.coalesced_requests")
_M_BATCH_REQUESTS = obs_metrics.histogram("serve.batch_requests")
_M_BATCH_POINTS = obs_metrics.histogram("serve.batch_points")
_M_QUEUE_WAIT = obs_metrics.histogram("serve.queue_wait_s")


def merge_grids(grids: Sequence[DesignGrid]) -> Tuple[DesignGrid,
                                                      List[Tuple[int, int]]]:
    """Concatenate grids into one; returns ``(merged, [(start, stop)])``."""
    spans: List[Tuple[int, int]] = []
    offset = 0
    for grid in grids:
        spans.append((offset, offset + grid.n_points))
        offset += grid.n_points
    if len(grids) == 1:
        return grids[0], spans
    merged = DesignGrid(
        num_pes=np.concatenate([grid.num_pes for grid in grids]),
        frequency_hz=np.concatenate([grid.frequency_hz for grid in grids]),
        batch=np.concatenate([grid.batch for grid in grids]),
        word_bits=np.concatenate([grid.word_bits for grid in grids]),
    )
    return merged, spans


def scatter_result(result: BatchSweepResult,
                   spans: Sequence[Tuple[int, int]]) -> List[BatchSweepResult]:
    """Slice a merged result back into per-request results, in span order."""
    return [result.take(np.arange(start, stop)) for start, stop in spans]


@dataclass
class _Pending:
    """One awaiting request inside a batch bucket."""

    grid: DesignGrid
    future: "asyncio.Future[BatchSweepResult]"
    enqueued: float


@dataclass
class Coalescer:
    """Window-based micro-batcher over an async ``evaluate`` callable.

    ``evaluate(key, merged_grid)`` scores one merged grid (the server
    runs it in a worker thread so the event loop stays responsive).
    ``submit`` parks each request on a future; the first request of a
    key's bucket arms a ``window_s`` timer, and the bucket flushes when
    the timer fires or the size bounds are hit — whichever comes first.
    Requests with different keys never share a batch.
    """

    evaluate: Callable[[str, DesignGrid], Awaitable[BatchSweepResult]]
    window_s: float = DEFAULT_WINDOW_S
    max_points: int = DEFAULT_MAX_POINTS
    max_requests: int = DEFAULT_MAX_REQUESTS
    #: raw queue-wait samples for p50/p99 (the metrics histogram keeps
    #: only count/total/min/max)
    queue_waits: Deque[float] = field(default_factory=lambda: deque(maxlen=8192))

    def __post_init__(self) -> None:
        self._pending: Dict[str, List[_Pending]] = {}
        self._timers: Dict[str, asyncio.TimerHandle] = {}
        self._tasks: set = set()

    async def submit(self, key: str, grid: DesignGrid) -> BatchSweepResult:
        """Queue one request's grid; resolves with its slice of the batch."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[BatchSweepResult]" = loop.create_future()
        bucket = self._pending.setdefault(key, [])
        bucket.append(_Pending(grid, future, loop.time()))
        points = sum(pending.grid.n_points for pending in bucket)
        if len(bucket) == 1:
            self._timers[key] = loop.call_later(
                self.window_s, self._flush_now, key)
        if points >= self.max_points or len(bucket) >= self.max_requests:
            self._flush_now(key)
        return await future

    def _flush_now(self, key: str) -> None:
        """Detach ``key``'s bucket and score it in a background task."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        batch = self._pending.pop(key, None)
        if not batch:
            return
        task = asyncio.get_running_loop().create_task(self._flush(key, batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _flush(self, key: str, batch: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        for pending in batch:
            wait = now - pending.enqueued
            _M_QUEUE_WAIT.observe(wait)
            self.queue_waits.append(wait)
        merged, spans = merge_grids([pending.grid for pending in batch])
        _M_BATCHES.inc()
        _M_COALESCED.inc(len(batch))
        _M_BATCH_REQUESTS.observe(len(batch))
        _M_BATCH_POINTS.observe(merged.n_points)
        try:
            result = await self.evaluate(key, merged)
        except Exception as error:  # noqa: BLE001 - fan the failure out
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(error)
            return
        for pending, piece in zip(batch, scatter_result(result, spans)):
            if not pending.future.done():
                pending.future.set_result(piece)

    async def drain(self) -> None:
        """Flush every armed bucket now and wait for in-flight batches."""
        for key in list(self._pending):
            self._flush_now(key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
