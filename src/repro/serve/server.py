"""The evaluation service: asyncio HTTP/JSON server over the engine stack.

One process, three execution lanes:

* the **event loop** parses requests and owns the coalescer — it never
  computes;
* a single **evaluation thread** scores coalesced grids and ``run``
  records (columnar batch calls release the GIL into numpy, so the loop
  stays responsive while keeping heavy math strictly serialised —
  serialisation is what makes coalescing pay: concurrent requests pile
  into the window instead of contending for cores);
* a single **long-op thread** runs mapping searches and functional
  verifies against the one process-wide
  :func:`repro.runtime.shared_runtime` pool, streaming progress back as
  chunked JSON-line events.  One thread means the shared pool is
  multiplexed across requests for the life of the server, never
  double-spawned.

Responses are built by :mod:`repro.serve.payloads` — the same builders
the CLI prints through — so every response body is byte-identical to
the equivalent ``repro <cmd> --json`` run.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro import __version__
from repro.analysis.batch import DesignGrid
from repro.cnn.zoo import NETWORKS, get_network, tiny_test_network
from repro.engine import available_engines, create_engine
from repro.engine.cache import RunCache
from repro.errors import ConfigurationError, WorkloadError
from repro.mapping import OBJECTIVES, STRATEGIES, ScheduleOptimizer, make_strategy
from repro.mapping.mapspace import ALGORITHM_MODES
from repro.memory.traffic import TrafficModel
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import REGISTRY
from repro.serve import payloads
from repro.serve.coalesce import Coalescer
from repro.serve.protocol import (
    DEFAULT_PORT,
    HttpRequest,
    MapParams,
    ProtocolError,
    RunParams,
    SweepParams,
    VerifyParams,
    chunk,
    coalesce_key,
    config_of,
    end_chunks,
    http_response,
    parse_params,
    read_http_request,
    start_chunked,
)
from repro.sim.network import FunctionalNetworkRunner

__all__ = ["EvalServer"]

_M_REQUESTS = obs_metrics.counter("serve.requests")
_M_ERRORS = obs_metrics.counter("serve.errors")
_M_POINTS = obs_metrics.counter("serve.points")
_G_CONNECTIONS = obs_metrics.gauge("serve.connections")

#: engines a sweep may dispatch through (baselines are fixed
#: architectures and cannot be swept — same rule as the CLI parser)
def _sweepable_engines() -> Tuple[str, ...]:
    return tuple(name for name in available_engines()
                 if not name.startswith("baseline-"))


class EvalServer:
    """Long-running evaluation service (see module docstring).

    ``window_ms`` is the coalescing micro-batch window; ``cache`` is an
    optional shared :class:`~repro.engine.cache.RunCache` used by the
    mapping-search lane (sweeps evaluate through the columnar path
    directly — purity is what makes scatter bit-identity a theorem
    rather than a test).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 *, window_ms: float = 4.0, workers: Optional[int] = None,
                 cache: Optional[RunCache] = None,
                 max_requests: int = 256) -> None:
        self.host = host
        self.port = port
        self.workers = workers
        self.cache = cache
        self.window_ms = window_ms
        self.coalescer = Coalescer(self._evaluate_merged,
                                   window_s=window_ms / 1000.0,
                                   max_requests=max_requests)
        self._contexts: Dict[str, Dict[str, Any]] = {}
        self._eval_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-eval")
        self._long_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-longop")
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self.started_at = time.monotonic()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "EvalServer":
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        # port 0 resolves to the kernel-assigned port
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                # bounded: on 3.11 wait_closed() can hang forever when
                # serve_forever() was cancelled (fixed in 3.12.1); the
                # sockets are already closed either way
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:
                pass
            self._server = None
        await self.coalescer.drain()
        for writer in list(self._writers):
            writer.close()
        self._eval_pool.shutdown(wait=True)
        self._long_pool.shutdown(wait=True)
        # the shared runtime pool deliberately outlives the server: it is
        # process-wide and other consumers (tests, CLI-in-process) reuse it

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        _G_CONNECTIONS.set(len(self._writers))
        try:
            while True:
                try:
                    request = await read_http_request(reader)
                except ProtocolError as error:
                    await self._send_error(writer, error.status, str(error))
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                _M_REQUESTS.inc()
                try:
                    await self._dispatch(request, writer)
                except ProtocolError as error:
                    await self._send_error(writer, error.status, str(error))
                except (ConfigurationError, WorkloadError, KeyError) as error:
                    await self._send_error(writer, 400, _message(error))
                except Exception as error:  # noqa: BLE001 - request boundary
                    await self._send_error(writer, 500, _message(error))
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            _G_CONNECTIONS.set(len(self._writers))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send_error(self, writer: asyncio.StreamWriter, status: int,
                          message: str) -> None:
        _M_ERRORS.inc()
        body = payloads.dumps({"error": message}).encode("utf-8")
        writer.write(http_response(status, body))
        await writer.drain()

    async def _send_json(self, writer: asyncio.StreamWriter,
                         payload: Dict[str, Any], status: int = 200) -> None:
        writer.write(http_response(status, payloads.dumps(payload).encode("utf-8")))
        await writer.drain()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: HttpRequest,
                        writer: asyncio.StreamWriter) -> None:
        method, path = request.method, request.path
        if method == "GET" and path == "/v1/health":
            await self._send_json(writer, self._health())
        elif method == "GET" and path == "/v1/metrics":
            await self._send_json(writer, {"metrics": REGISTRY.flat()})
        elif method == "POST" and path == "/v1/run":
            await self._handle_run(request, writer)
        elif method == "POST" and path == "/v1/sweep":
            await self._handle_sweep(request, writer)
        elif method == "POST" and path == "/v1/map":
            await self._handle_map(request, writer)
        elif method == "POST" and path == "/v1/verify":
            await self._handle_verify(request, writer)
        else:
            raise ProtocolError(f"no route for {method} {path}", status=404)

    def _health(self) -> Dict[str, Any]:
        flat = REGISTRY.flat()
        return {
            "status": "ok",
            "version": __version__,
            "uptime_s": time.monotonic() - self.started_at,
            "window_ms": self.window_ms,
            "requests": flat.get("serve.requests", 0),
            "coalesced_batches": flat.get("serve.coalesced_batches", 0),
        }

    # ------------------------------------------------------------------ #
    # run lane
    # ------------------------------------------------------------------ #
    async def _handle_run(self, request: HttpRequest,
                          writer: asyncio.StreamWriter) -> None:
        params = parse_params(RunParams, request.json())
        engine_kwargs = _validate_run(params)
        network = _zoo_network(params.network)
        config = config_of(params)

        def work() -> Dict[str, Any]:
            engine = create_engine(params.engine, **engine_kwargs)
            record = engine.evaluate(network, config, batch=params.batch)
            traffic = (TrafficModel(config).network_traffic(network, params.batch)
                       if params.traffic else None)
            return payloads.run_payload(record, traffic)

        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(self._eval_pool, work)
        await self._send_json(writer, payload)

    # ------------------------------------------------------------------ #
    # sweep lane (coalesced)
    # ------------------------------------------------------------------ #
    async def _handle_sweep(self, request: HttpRequest,
                            writer: asyncio.StreamWriter) -> None:
        params = parse_params(SweepParams, request.json())
        if params.engine not in _sweepable_engines():
            raise ProtocolError(
                f"unknown or unsweepable engine {params.engine!r}")
        engine_name = payloads.upgrade_grid_engine(params.engine)
        network = _zoo_network(params.network)
        base = config_of(params)
        # parsed exactly as DesignSpaceExplorer.sweep_grid parses it
        grid = DesignGrid.parse(params.grid, base=base,
                                default_batch=params.batch)
        key = coalesce_key(engine_name, network, base)
        self._contexts.setdefault(key, {
            "engine": create_engine(engine_name),
            "network": network,
            "base": base,
        })
        result = await self.coalescer.submit(key, grid)
        _M_POINTS.inc(result.n_points)
        pareto, top = payloads.reduce_grid_result(
            result, params.objectives, params.metric, params.top, params.pareto)
        payload = payloads.grid_payload(
            params.grid, engine_name, params.network, result, pareto, top,
            params.objectives, params.metric)
        await self._send_json(writer, payload)

    async def _evaluate_merged(self, key: str, merged: DesignGrid):
        """Score one coalesced grid on the evaluation thread."""
        context = self._contexts[key]
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._eval_pool,
            lambda: context["engine"].evaluate_batch(
                context["network"], merged, base=context["base"]))

    # ------------------------------------------------------------------ #
    # long-op lane (map / verify), chunked progress streaming
    # ------------------------------------------------------------------ #
    async def _handle_map(self, request: HttpRequest,
                          writer: asyncio.StreamWriter) -> None:
        params = parse_params(MapParams, request.json())
        strategy_kwargs = _validate_map(params)
        network = _zoo_network(params.network)

        def work(emit: Callable[[Dict[str, Any]], None]) -> Tuple[Dict[str, Any], int]:
            optimizer = ScheduleOptimizer(
                config=config_of(params),
                objective=params.objective,
                strategy=make_strategy(params.strategy, **strategy_kwargs),
                batch=params.batch,
                cache=self.cache,
                workers=params.workers if params.workers is not None
                else self.workers,
                algorithm=params.algorithm,
            )
            schedule = optimizer.optimize(network)
            emit({"event": "searched", "layers": len(schedule.layers)})
            verification = (optimizer.verify(network, schedule, seed=params.seed)
                            if params.verify else None)
            payload = payloads.map_payload(schedule, params.algorithm,
                                           verification)
            status = 0 if verification is None or verification.passed else 1
            return payload, status

        await self._stream_long_op(writer, work, label="map")

    async def _handle_verify(self, request: HttpRequest,
                             writer: asyncio.StreamWriter) -> None:
        params = parse_params(VerifyParams, request.json())
        backend = _validate_verify(params)
        network = (tiny_test_network() if params.network == "tiny"
                   else _zoo_network(params.network))

        def work(emit: Callable[[Dict[str, Any]], None]) -> Tuple[Dict[str, Any], int]:
            runner = FunctionalNetworkRunner(
                config_of(params), backend=backend, seed=params.seed,
                workers=params.workers if params.workers is not None
                else self.workers,
                algorithm=params.algorithm,
            )
            try:
                result = runner.run(network, progress=lambda stage: emit(
                    {"event": "stage", **payloads.stage_event(stage)}))
            finally:
                runner.close()
            return payloads.verify_payload(result), 0 if result.passed else 1

        await self._stream_long_op(writer, work, label="verify")

    async def _stream_long_op(self, writer: asyncio.StreamWriter, work,
                              label: str) -> None:
        """Run ``work`` on the long-op thread, streaming progress chunks.

        ``work(emit)`` may call ``emit(event_dict)`` from its thread; the
        events are forwarded to the client as JSON-line chunks, with
        heartbeats while the search is silent, and a final
        ``{"event": "result", "status": ..., "payload": ...}``.
        """
        loop = asyncio.get_running_loop()
        events: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()

        def emit(event: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(events.put_nowait, event)

        writer.write(start_chunked())
        await writer.drain()
        started = loop.time()
        future = loop.run_in_executor(self._long_pool, work, emit)
        try:
            while True:
                drained = False
                while not events.empty():
                    writer.write(chunk(events.get_nowait()))
                    drained = True
                if drained:
                    await writer.drain()
                if future.done():
                    break
                done, _ = await asyncio.wait({future}, timeout=1.0)
                if not done and events.empty():
                    writer.write(chunk({"event": "working", "op": label,
                                        "elapsed_s": round(loop.time() - started, 1)}))
                    await writer.drain()
            try:
                payload, status = future.result()
            except ProtocolError as error:
                _M_ERRORS.inc()
                writer.write(chunk({"event": "error", "status": error.status,
                                    "error": str(error)}))
            except Exception as error:  # noqa: BLE001 - request boundary
                _M_ERRORS.inc()
                writer.write(chunk({"event": "error", "status": 500,
                                    "error": _message(error)}))
            else:
                writer.write(chunk({"event": "result", "status": status,
                                    "payload": payload}))
            writer.write(end_chunks())
            await writer.drain()
        except (ConnectionError, ConnectionResetError):
            # client went away mid-stream; let the computation finish (it
            # shares the lane with other requests) and drop the output
            await asyncio.wait({future})


# --------------------------------------------------------------------- #
# request validation (same rules and wording as the CLI's exit-2 paths)
# --------------------------------------------------------------------- #
def _message(error: BaseException) -> str:
    text = str(error) or type(error).__name__
    return f"{type(error).__name__}: {text}" if not str(error) else text


def _zoo_network(name: str):
    if name not in NETWORKS:
        raise ProtocolError(
            f"unknown network {name!r}; choose from {', '.join(sorted(NETWORKS))}")
    return get_network(name)


def _validate_run(params: RunParams) -> Dict[str, Any]:
    if params.engine not in available_engines():
        raise ProtocolError(f"unknown engine {params.engine!r}")
    engine_kwargs: Dict[str, Any] = {}
    if params.engine == "analytical":
        engine_kwargs = {"mode": params.mode or "paper"}
    elif params.mode is not None:
        expected = "detailed" if params.engine == "analytical-detailed" else None
        if params.mode != expected:
            raise ProtocolError(
                f"mode {params.mode} conflicts with engine {params.engine}")
    if params.workers is not None:
        if params.engine != "functional-vectorized":
            raise ProtocolError(
                "workers applies to engine functional-vectorized only, "
                f"not {params.engine}")
        engine_kwargs["workers"] = params.workers
    if params.algorithm != "direct":
        algorithm_engines = ("functional", "functional-vectorized",
                             "analytical-mapped")
        if params.engine not in algorithm_engines:
            raise ProtocolError(
                f"algorithm {params.algorithm} applies to engines "
                f"{{{','.join(algorithm_engines)}}}, not {params.engine}")
        engine_kwargs["algorithm"] = params.algorithm
    return engine_kwargs


def _validate_map(params: MapParams) -> Dict[str, Any]:
    if params.objective not in OBJECTIVES:
        raise ProtocolError(f"unknown objective {params.objective!r}")
    if params.strategy not in STRATEGIES:
        raise ProtocolError(f"unknown strategy {params.strategy!r}")
    if params.algorithm not in ALGORITHM_MODES:
        raise ProtocolError(f"unknown algorithm mode {params.algorithm!r}")
    if params.samples is not None and params.strategy != "random":
        raise ProtocolError(
            f"samples applies to strategy random only, not {params.strategy}")
    if params.iterations is not None and params.strategy != "anneal":
        raise ProtocolError(
            f"iterations applies to strategy anneal only, not {params.strategy}")
    strategy_kwargs: Dict[str, Any] = {}
    if params.strategy in ("random", "anneal"):
        strategy_kwargs["seed"] = params.seed
    if params.samples is not None:
        strategy_kwargs["samples"] = params.samples
    if params.iterations is not None:
        strategy_kwargs["iterations"] = params.iterations
    return strategy_kwargs


def _validate_verify(params: VerifyParams) -> str:
    if params.algorithm not in ALGORITHM_MODES:
        raise ProtocolError(f"unknown algorithm mode {params.algorithm!r}")
    backend = params.backend or ("both" if params.network == "tiny"
                                 else "vectorized")
    if backend not in ("both", "vectorized", "scalar"):
        raise ProtocolError(f"unknown backend {backend!r}")
    if params.workers is not None and backend != "vectorized":
        raise ProtocolError(
            f"workers requires the vectorized backend, not {backend}")
    return backend
