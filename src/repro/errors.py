"""Exception hierarchy for the Chain-NN reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration problems from simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An accelerator, memory or technology configuration is invalid.

    Raised when a user-supplied parameter is out of range (for example a
    negative PE count) or when a combination of parameters is inconsistent
    (for example a kernel larger than the chain).
    """


class MappingError(ReproError):
    """A CNN layer cannot be mapped onto the configured chain.

    Raised by :mod:`repro.core.mapper` when, for instance, the kernel window
    ``K*K`` exceeds the number of physical PEs in the chain.
    """


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class CapacityError(ReproError):
    """A tile or working set does not fit in the targeted on-chip memory."""


class QuantizationError(ReproError):
    """Fixed-point conversion failed (illegal Q-format or overflow policy)."""


class WorkloadError(ReproError):
    """A CNN layer or network specification is malformed."""
