"""Trace/metrics exporters and trace-file analysis.

Three output shapes:

* **Chrome trace-event JSON** (default, any ``--trace`` path not ending
  in ``.jsonl``): a ``{"traceEvents": [...]}`` document loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` — each
  process (main + every pool worker) renders as its own named track, so
  the pool timeline is visible at a glance.
* **JSONL event log** (``--trace out.jsonl``): one JSON object per line,
  spans/instants in recording order, a final ``{"type": "metrics"}``
  line — grep/jq friendly.
* **Flat metrics dump** (``--metrics``): ``repro.obs.metrics.render_metrics``.

:func:`summarize_trace` / :func:`render_summary` back the
``repro trace summarize FILE`` command, and :func:`validate_chrome_trace`
is the structural check CI runs on the traced-sweep smoke artifact
(parseable JSON, non-empty, spans properly nested per process).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import REGISTRY
from repro.obs import trace as _trace

__all__ = [
    "chrome_trace_document",
    "export_trace",
    "write_chrome_trace",
    "write_jsonl",
    "load_trace",
    "validate_chrome_trace",
    "summarize_trace",
    "render_summary",
]


def chrome_trace_document(events: List[Dict[str, Any]],
                          labels: Optional[Dict[int, str]] = None,
                          metrics: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the ``{"traceEvents": [...]}`` document.

    Emits one ``process_name`` metadata event per pid so Perfetto labels
    the main/worker tracks, then the span (``ph:"X"``) and instant
    (``ph:"i"``) events with microsecond ``ts``/``dur``.
    """
    labels = dict(labels or {})
    for event in events:
        labels.setdefault(event["pid"], event.get("proc", f"pid-{event['pid']}"))
    trace_events: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": label}}
        for pid, label in sorted(labels.items())
    ]
    for event in events:
        out: Dict[str, Any] = {
            "ph": event["ph"],
            "name": event["name"],
            "cat": "repro",
            "ts": event["ts"],
            "pid": event["pid"],
            "tid": event.get("tid", 0),
            "args": event.get("args", {}),
        }
        if event["ph"] == "X":
            out["dur"] = event.get("dur", 0)
        else:
            out["s"] = "t"  # thread-scoped instant
        trace_events.append(out)
    document: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if metrics:
        document["metadata"] = {"repro.metrics": metrics}
    return document


def write_chrome_trace(path: str, events: List[Dict[str, Any]],
                       labels: Optional[Dict[int, str]] = None,
                       metrics: Optional[Dict[str, Any]] = None) -> None:
    document = chrome_trace_document(events, labels, metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=None, separators=(",", ":"))
        handle.write("\n")


def write_jsonl(path: str, events: List[Dict[str, Any]],
                metrics: Optional[Dict[str, Any]] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            record = dict(event)
            record["type"] = "span" if event["ph"] == "X" else "instant"
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        if metrics:
            handle.write(json.dumps({"type": "metrics", "metrics": metrics},
                                    separators=(",", ":")) + "\n")


def export_trace(path: str, recorder: Optional[Any] = None) -> int:
    """Write the active recorder's merged trace to ``path``.

    Dispatches on extension (``.jsonl`` -> event log, anything else ->
    Chrome trace JSON).  Returns the number of events written.
    """
    recorder = recorder or _trace.get_recorder()
    if recorder is None:
        raise RuntimeError("tracing is not enabled; nothing to export")
    labels = recorder.process_labels()
    events = recorder.drain()
    metrics = REGISTRY.snapshot()
    if path.endswith(".jsonl"):
        write_jsonl(path, events, metrics)
    else:
        write_chrome_trace(path, events, labels, metrics)
    return len(events)


# -- reading traces back ---------------------------------------------------


def load_trace(path: str) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Read either export format back to (events, metadata).

    ``metadata`` carries ``labels`` (pid -> process name) and ``metrics``
    when the file recorded them.
    """
    meta: Dict[str, Any] = {"labels": {}, "metrics": {}}
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    # both formats start with "{": the Chrome document is ONE JSON object
    # carrying "traceEvents", the event log is one object PER LINE
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and "traceEvents" in document:
        for event in document["traceEvents"]:
            if event.get("ph") == "M":
                if event.get("name") == "process_name":
                    meta["labels"][event["pid"]] = event["args"]["name"]
                continue
            events.append(event)
        meta["metrics"] = (document.get("metadata") or {}).get(
            "repro.metrics", {})
        return events, meta
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "metrics":
            meta["metrics"] = record["metrics"]
            continue
        events.append(record)
    return events, meta


def validate_chrome_trace(path: str) -> Dict[str, Any]:
    """Structural validation of an exported Chrome trace (used by CI).

    Asserts the file is parseable JSON with a non-empty ``traceEvents``
    list and that complete spans nest properly within each (pid, tid)
    track — a span must close inside its parent; partial overlap means a
    merge bug.  Returns summary counts.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list) or not trace_events:
        raise ValueError(f"{path}: no traceEvents")
    spans = [e for e in trace_events if e.get("ph") == "X"]
    instants = [e for e in trace_events if e.get("ph") == "i"]
    if not spans:
        raise ValueError(f"{path}: no complete spans (ph=X)")
    for event in spans:
        for key in ("name", "ts", "dur", "pid"):
            if key not in event:
                raise ValueError(f"{path}: span missing {key!r}: {event}")
        if event["dur"] < 0:
            raise ValueError(f"{path}: negative duration: {event}")
    tracks: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
    for event in spans:
        tracks.setdefault((event["pid"], event.get("tid", 0)), []).append(event)
    for key, track in tracks.items():
        # sort outermost-first at equal start so nesting checks parent first
        track.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[int] = []  # open span end timestamps
        for event in track:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and stack[-1] <= start:
                stack.pop()
            if stack and end > stack[-1]:
                raise ValueError(
                    f"{path}: span {event['name']!r} on track {key} overlaps "
                    f"its parent ([{start}, {end}] vs parent end {stack[-1]})")
            stack.append(end)
    pids = sorted({e["pid"] for e in spans + instants})
    return {
        "spans": len(spans),
        "instants": len(instants),
        "processes": len(pids),
        "tracks": len(tracks),
    }


def summarize_trace(path: str) -> Dict[str, Any]:
    """Aggregate a trace file for ``repro trace summarize``."""
    events, meta = load_trace(path)
    spans = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    by_name: Dict[str, Dict[str, float]] = {}
    for event in spans:
        entry = by_name.setdefault(event["name"], {
            "count": 0, "total_us": 0.0, "max_us": 0.0})
        entry["count"] += 1
        entry["total_us"] += event["dur"]
        if event["dur"] > entry["max_us"]:
            entry["max_us"] = float(event["dur"])
    instant_counts: Dict[str, int] = {}
    for event in instants:
        instant_counts[event["name"]] = instant_counts.get(event["name"], 0) + 1
    timestamps = [e["ts"] for e in events]
    ends = [e["ts"] + e.get("dur", 0) for e in events]
    processes = {}
    labels = meta.get("labels", {})
    for event in events:
        pid = event["pid"]
        processes.setdefault(
            pid, labels.get(pid) or labels.get(str(pid))
            or event.get("proc", f"pid-{pid}"))
    return {
        "path": path,
        "spans": sum(int(e["count"]) for e in by_name.values()),
        "instants": len(instants),
        "wall_us": (max(ends) - min(timestamps)) if events else 0,
        "processes": {str(pid): name for pid, name in sorted(processes.items())},
        "by_name": by_name,
        "instant_counts": instant_counts,
        "metrics": meta.get("metrics", {}),
    }


def render_summary(summary: Dict[str, Any]) -> str:
    lines = [
        f"trace {summary['path']}",
        f"  {summary['spans']} spans, {summary['instants']} instants over "
        f"{summary['wall_us'] / 1e3:.2f} ms across "
        f"{len(summary['processes'])} process(es)",
    ]
    for pid, name in summary["processes"].items():
        lines.append(f"    pid {pid}: {name}")
    if summary["by_name"]:
        lines.append(f"  {'span':<32} {'count':>7} {'total ms':>10} "
                     f"{'mean ms':>9} {'max ms':>9}")
        ranked = sorted(summary["by_name"].items(),
                        key=lambda item: -item[1]["total_us"])
        for name, entry in ranked:
            mean = entry["total_us"] / entry["count"] if entry["count"] else 0.0
            lines.append(
                f"  {name:<32} {int(entry['count']):>7} "
                f"{entry['total_us'] / 1e3:>10.2f} {mean / 1e3:>9.3f} "
                f"{entry['max_us'] / 1e3:>9.3f}")
    if summary["instant_counts"]:
        lines.append("  instants:")
        for name, count in sorted(summary["instant_counts"].items()):
            lines.append(f"    {name:<36} {count}")
    return "\n".join(lines)
