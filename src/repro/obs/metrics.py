"""Process-wide metrics registry: counters, gauges, histograms.

Every performance-critical subsystem (``RunCache``, ``SweepExecutor``,
``BatchDesignEvaluator``, the mapping search, ``SupervisedRuntime``, the
kernel registry) increments named metrics through the module-global
:data:`REGISTRY`.  Metrics are *always on*: an increment is a plain Python
attribute add on a memoised object, cheap enough to leave in the hot
paths unconditionally — that is what lets the CLI print its stats footer
after every ``sweep``/``map`` without ``--trace``.

Worker processes carry the same registry (it travels across ``fork`` /
is rebuilt on ``spawn``); :meth:`MetricsRegistry.collect_delta` diffs the
registry against the last shipped baseline so each task result can carry
only the increments it caused, and :meth:`MetricsRegistry.merge` folds a
shipped delta into the parent registry — counters add, gauges take the
last write, histograms merge count/total/min/max.

The registry is deliberately not thread-safe: the runtime is
process-parallel (one registry per process) and CPython attribute
increments are only ever raced by signal handlers we do not use.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]


class Counter:
    """A monotonically increasing count (hits, points, retries, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value (pool size, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A streaming summary (count/total/min/max) of observed samples.

    Full bucketed distributions are overkill for the latencies tracked
    here (lock waits, span durations); count+total+extrema merge exactly
    across processes, which the worker shipping path requires.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {"count": self.count, "total": self.total}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out["mean"] = self.total / self.count
        return out


class MetricsRegistry:
    """Memoised name -> instrument store with delta shipping and merge."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # baseline snapshot the next collect_delta() diffs against
        self._baseline: Optional[Dict[str, Any]] = None

    # -- instrument access ------------------------------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    # -- snapshots / shipping ---------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Nested view of every non-zero instrument (JSON-serialisable)."""
        return {
            "counters": {c.name: c.value
                         for c in self._counters.values() if c.value},
            "gauges": {g.name: g.value
                       for g in self._gauges.values() if g.value},
            "histograms": {h.name: h.as_dict()
                           for h in self._histograms.values() if h.count},
        }

    def rebase(self) -> None:
        """Make the current state the shipping baseline.

        Called in freshly initialised workers so counts inherited across
        ``fork`` are not re-shipped to the parent (which already has them).
        """
        self._baseline = self.snapshot()

    def collect_delta(self) -> Optional[Dict[str, Any]]:
        """Increments since the last ``rebase``/``collect_delta``.

        Returns ``None`` when nothing changed.  Histogram deltas carry the
        count/total diff plus the current extrema (min of mins is exact
        under merge; a baseline-era extremum re-shipping is harmless).
        """
        base = self._baseline or {"counters": {}, "gauges": {}, "histograms": {}}
        now = self.snapshot()
        delta: Dict[str, Any] = {}
        counters = {
            name: value - base["counters"].get(name, 0)
            for name, value in now["counters"].items()
            if value != base["counters"].get(name, 0)
        }
        if counters:
            delta["counters"] = counters
        gauges = {
            name: value
            for name, value in now["gauges"].items()
            if value != base["gauges"].get(name)
        }
        if gauges:
            delta["gauges"] = gauges
        histograms = {}
        for name, summary in now["histograms"].items():
            before = base["histograms"].get(name, {"count": 0, "total": 0.0})
            if summary["count"] == before["count"]:
                continue
            histograms[name] = {
                "count": summary["count"] - before["count"],
                "total": summary["total"] - before["total"],
                "min": summary["min"],
                "max": summary["max"],
            }
        if histograms:
            delta["histograms"] = histograms
        self._baseline = now
        return delta or None

    def merge(self, delta: Optional[Dict[str, Any]]) -> None:
        """Fold a shipped delta (from :meth:`collect_delta`) into this registry."""
        if not delta:
            return
        for name, amount in delta.get("counters", {}).items():
            self.counter(name).inc(amount)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in delta.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += summary["count"]
            hist.total += summary["total"]
            if summary["min"] < hist.min:
                hist.min = summary["min"]
            if summary["max"] > hist.max:
                hist.max = summary["max"]

    # -- maintenance -------------------------------------------------------

    def reset(self) -> None:
        """Zero every instrument *in place*.

        Call sites bind instrument objects once at module import
        (``_HITS = counter("cache.hits")``), so reset must keep the
        objects and zero their state rather than clear the dicts.
        """
        for c in self._counters.values():
            c.value = 0
        for g in self._gauges.values():
            g.value = 0.0
        for h in self._histograms.values():
            h.count = 0
            h.total = 0.0
            h.min = float("inf")
            h.max = float("-inf")
        self._baseline = None

    def flat(self) -> Dict[str, float]:
        """Flat ``name -> number`` view for the ``--metrics`` text dump."""
        out: Dict[str, float] = {}
        snap = self.snapshot()
        out.update(snap["counters"])
        out.update(snap["gauges"])
        for name, summary in snap["histograms"].items():
            for key, value in summary.items():
                out[f"{name}.{key}"] = value
        return out


#: the process-global registry every instrumented subsystem writes to
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Shorthand for ``REGISTRY.counter(name)`` (bind once at import)."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)


def render_metrics(flat: Optional[Dict[str, float]] = None,
                   prefixes: Optional[Iterable[str]] = None) -> str:
    """Human-readable flat dump, sorted by name, for ``--metrics``."""
    flat = REGISTRY.flat() if flat is None else flat
    lines = []
    for name in sorted(flat):
        if prefixes and not any(name.startswith(p) for p in prefixes):
            continue
        value = flat[name]
        if isinstance(value, float) and not value.is_integer():
            lines.append(f"{name:<44} {value:.6g}")
        else:
            lines.append(f"{name:<44} {int(value)}")
    return "\n".join(lines)
