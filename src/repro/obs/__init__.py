"""``repro.obs`` — unified tracing, metrics, and profiling.

The observability layer over the whole stack:

* :mod:`repro.obs.trace` — span-based *wall-clock* tracing with nested
  spans, monotonic timestamps, attributes, and process/worker identity;
  near-zero overhead while disabled.  (Distinct from
  :mod:`repro.sim.trace`, the simulated *cycle-domain* event log of the
  cycle-accurate PE-chain simulator.)
* :mod:`repro.obs.metrics` — an always-on registry of counters, gauges,
  and histograms fed by ``RunCache``, the sweep executors, the mapping
  search, the supervised runtime, and the kernel registry.
* :mod:`repro.obs.export` — JSONL and Chrome trace-event (Perfetto /
  ``chrome://tracing``) exporters plus trace summarization/validation.

Pool workers record locally and ship ``(events, metrics delta)`` payloads
back on the existing result channel (see ``repro.runtime.pool``), so one
merged trace covers the whole pool and survives crash/respawn.

Enabled by the CLI ``--trace FILE`` / ``--metrics`` flags or
programmatically::

    from repro import obs
    obs.enable()
    with obs.span("my.phase", n=42):
        ...
    obs.export_trace("trace.json")
"""

from repro.obs import metrics
from repro.obs import trace
from repro.obs.export import (
    export_trace,
    load_trace,
    render_summary,
    summarize_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    render_metrics,
)
from repro.obs.trace import (
    TRACE_ENV,
    TraceRecorder,
    absorb,
    disable,
    enable,
    enabled,
    get_recorder,
    instant,
    ship,
    span,
    traced,
    worker_init,
)

__all__ = [
    "metrics",
    "trace",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "render_metrics",
    "TRACE_ENV",
    "TraceRecorder",
    "absorb",
    "disable",
    "enable",
    "enabled",
    "get_recorder",
    "instant",
    "ship",
    "span",
    "traced",
    "worker_init",
    "export_trace",
    "load_trace",
    "render_summary",
    "summarize_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
