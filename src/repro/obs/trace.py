"""Span-based structured tracing (wall-clock domain).

Nested spans with monotonic timestamps, free-form attributes, and
process/worker identity, behind a context-manager/decorator API:

>>> from repro.obs import trace
>>> trace.enable()                       # or `repro ... --trace out.json`
>>> with trace.span("sweep.run_points", points=64):
...     ...
>>> trace.instant("runtime.respawns", worker_id=3)

Disabled (the default) every call is a near-zero no-op: :func:`span`
returns a shared null context manager and :func:`instant` falls through
a single ``None`` check — cheap enough to leave in hot paths (the
``repro bench obs`` record asserts the <=1% budget).

Two design points matter for the parallel runtime:

* **One timeline across processes.**  Timestamps come from
  ``time.monotonic``, which on Linux is CLOCK_MONOTONIC — a *system-wide*
  clock, so forked/spawned workers share the parent's epoch and their
  spans land on the same timeline without offset arithmetic.
* **Only closed spans are recorded.**  A span buffers nothing until its
  ``__exit__`` appends one complete event, so a shipped or exported
  trace structurally cannot contain unclosed spans — a worker that
  crashes mid-task simply loses that task's span, while the supervisor's
  death/respawn instants (parent side) keep the failure visible.

The clock is injectable (``TraceRecorder(clock=...)``) so tests can
assert exact timestamps.  Not to be confused with
:mod:`repro.sim.trace`, which records *simulated cycle-domain* PE events
inside the cycle-accurate simulator; this module records *wall-clock*
host execution.
"""

from __future__ import annotations

import functools
import os
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import REGISTRY

__all__ = [
    "TRACE_ENV",
    "TraceRecorder",
    "enable",
    "disable",
    "enabled",
    "get_recorder",
    "span",
    "instant",
    "traced",
    "worker_init",
    "ship",
    "absorb",
]

#: set by :func:`enable` so later-spawned pool workers inherit tracing
TRACE_ENV = "REPRO_TRACE"


class _Span:
    """A live span; appends one complete event to the recorder on exit."""

    __slots__ = ("_recorder", "name", "attrs", "_start")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 attrs: Optional[Dict[str, Any]]) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        rec = self._recorder
        rec.depth += 1
        self._start = rec.now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        rec = self._recorder
        end = rec.now_us()
        rec.depth -= 1
        event: Dict[str, Any] = {
            "ph": "X",
            "name": self.name,
            "ts": self._start,
            "dur": end - self._start,
            "pid": rec.pid,
            "tid": rec.tid,
        }
        if self.attrs:
            event["args"] = self.attrs
        if exc_type is not None:
            event.setdefault("args", {})["error"] = exc_type.__name__
        rec.events.append(event)


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Collects complete span/instant events for one process.

    ``label`` names the process lane in exported traces (``main``,
    ``worker-3``); ``clock`` defaults to the system-wide monotonic clock
    and is injectable for deterministic tests.
    """

    def __init__(self, label: str = "main",
                 clock: Optional[Callable[[], float]] = None,
                 worker_id: Optional[int] = None) -> None:
        self.label = label
        self.worker_id = worker_id
        self.clock = time.monotonic if clock is None else clock
        self.pid = os.getpid()
        self.tid = 0
        self.depth = 0
        self.events: List[Dict[str, Any]] = []

    def now_us(self) -> int:
        return int(self.clock() * 1_000_000)

    def span(self, name: str, **attrs: Any) -> _Span:
        return _Span(self, name, attrs or None)

    def instant(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        event: Dict[str, Any] = {
            "ph": "i",
            "name": name,
            "ts": self.now_us(),
            "pid": self.pid,
            "tid": self.tid,
        }
        if attrs:
            event["args"] = attrs
        self.events.append(event)

    def drain(self) -> List[Dict[str, Any]]:
        """Take (and clear) the buffered events."""
        events, self.events = self.events, []
        return events

    def process_labels(self) -> Dict[int, str]:
        """pid -> label map over buffered events (merged traces span pids)."""
        labels = {self.pid: self.label}
        for event in self.events:
            labels.setdefault(event["pid"], event.get("proc", "worker"))
        return labels


#: the process-global recorder; ``None`` means tracing is disabled
_recorder: Optional[TraceRecorder] = None


def enabled() -> bool:
    return _recorder is not None


def get_recorder() -> Optional[TraceRecorder]:
    return _recorder


def enable(clock: Optional[Callable[[], float]] = None,
           label: str = "main", env: bool = True) -> TraceRecorder:
    """Install a recorder; with ``env`` also mark :data:`TRACE_ENV` so
    pool workers created afterwards enable themselves (os.environ is
    inherited across both fork and spawn)."""
    global _recorder
    if _recorder is None:
        _recorder = TraceRecorder(label=label, clock=clock)
    if env:
        os.environ[TRACE_ENV] = "1"
    return _recorder


def disable(env: bool = True) -> None:
    global _recorder
    _recorder = None
    if env:
        os.environ.pop(TRACE_ENV, None)


def span(name: str, **attrs: Any):
    """A context manager timing ``name``; no-op while tracing is disabled."""
    rec = _recorder
    if rec is None:
        return _NULL_SPAN
    return _Span(rec, name, attrs or None)


def instant(name: str, **attrs: Any) -> None:
    """Record a point event (worker death, respawn, quarantine...)."""
    rec = _recorder
    if rec is not None:
        rec.instant(name, attrs or None)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator form of :func:`span` (span per call, qualname default)."""
    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            rec = _recorder
            if rec is None:
                return fn(*args, **kwargs)
            with _Span(rec, span_name, None):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


# -- worker-side collection -----------------------------------------------


def worker_init(worker_id: int) -> bool:
    """Called at the top of every pool worker's main loop.

    Replaces any recorder inherited across ``fork`` (its buffer belongs
    to the parent) with a fresh worker-labelled one when the parent
    enabled tracing, and rebases the metrics registry so inherited
    counts are not re-shipped.  Returns whether tracing is live.
    """
    global _recorder
    if os.environ.get(TRACE_ENV):
        _recorder = TraceRecorder(label=f"worker-{worker_id}",
                                  worker_id=worker_id)
        REGISTRY.rebase()
        return True
    _recorder = None
    return False


def ship() -> Optional[Dict[str, Any]]:
    """The observability payload a worker attaches to a result message.

    Completed span/instant events since the last ship, plus the metrics
    delta.  ``None`` when tracing is disabled or nothing happened —
    the common case for untraced runs, costing one ``None`` check.
    """
    rec = _recorder
    if rec is None:
        return None
    events = rec.drain()
    for event in events:
        event.setdefault("proc", rec.label)
    delta = REGISTRY.collect_delta()
    if not events and not delta:
        return None
    payload: Dict[str, Any] = {}
    if events:
        payload["events"] = events
    if delta:
        payload["metrics"] = delta
    return payload


def absorb(payload: Optional[Dict[str, Any]]) -> None:
    """Merge a shipped worker payload into this (parent) process.

    Metrics merge into the registry unconditionally (they feed the stats
    footer); events only land when the parent itself is recording.
    """
    if not payload:
        return
    REGISTRY.merge(payload.get("metrics"))
    rec = _recorder
    if rec is not None:
        events = payload.get("events")
        if events:
            rec.events.extend(events)
