"""Experiment: Table IV — memory-communication breakdown (AlexNet, batch 4).

The traffic model's per-layer DRAM / iMemory / kMemory / oMemory volumes are
compared against the paper's table.  The oMemory column reproduces exactly;
kMemory and iMemory match the stride-1 layers closely and deviate for conv1
(strided) and conv2, whose tiling constants the paper does not disclose —
see EXPERIMENTS.md for the discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import render_dict_table
from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig
from repro.memory.traffic import TrafficModel

#: Table IV as printed (decimal MByte, batch = 4)
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "conv1": {"DRAM": 9.0, "iMemory": 6.6, "kMemory": 15.4, "oMemory": 13.9},
    "conv2": {"DRAM": 5.5, "iMemory": 8.7, "kMemory": 17.8, "oMemory": 143.3},
    "conv3": {"DRAM": 4.3, "iMemory": 4.8, "kMemory": 37.2, "oMemory": 265.8},
    "conv4": {"DRAM": 3.4, "iMemory": 3.6, "kMemory": 27.9, "oMemory": 199.4},
    "conv5": {"DRAM": 2.3, "iMemory": 2.4, "kMemory": 18.6, "oMemory": 132.9},
    "Total": {"DRAM": 24.5, "iMemory": 26.2, "kMemory": 116.8, "oMemory": 755.3},
}


@dataclass(frozen=True)
class Table4Result:
    """Measured and published Table IV."""

    measured: Dict[str, Dict[str, float]]
    paper: Dict[str, Dict[str, float]]

    def ratios(self) -> Dict[str, Dict[str, float]]:
        """measured / paper per cell."""
        out: Dict[str, Dict[str, float]] = {}
        for layer, row in self.paper.items():
            out[layer] = {
                store: (self.measured[layer][store] / value) if value else 0.0
                for store, value in row.items()
            }
        return out

    def omemory_max_deviation(self) -> float:
        """Largest relative deviation of the oMemory column (expected ~0)."""
        return max(abs(r["oMemory"] - 1.0) for layer, r in self.ratios().items())

    def ordering_preserved(self) -> bool:
        """True when oMemory >> kMemory > iMemory holds in the measured totals."""
        totals = self.measured["Total"]
        return totals["oMemory"] > totals["kMemory"] > totals["iMemory"]

    def report(self) -> str:
        """Human-readable side-by-side table."""
        side = {}
        for layer in self.paper:
            side[layer] = {}
            for store in ("DRAM", "iMemory", "kMemory", "oMemory"):
                side[layer][f"{store} paper"] = self.paper[layer][store]
                side[layer][f"{store} meas."] = round(self.measured[layer][store], 1)
        return render_dict_table(
            side, title="Table IV - memory communication breakdown (MByte, batch 4)",
            row_label="layer")


def run_table4(config: ChainConfig | None = None, batch: int = 4) -> Table4Result:
    """Regenerate Table IV."""
    model = TrafficModel(config or ChainConfig())
    traffic = model.network_traffic(alexnet(), batch=batch)
    return Table4Result(measured=traffic.table(), paper=PAPER_TABLE4)
