"""One module per paper artifact (tables and figures of the evaluation)."""

from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.fig10 import Fig10Result, run_fig10
from repro.experiments.networks import NetworkStudyResult, run_network_study
from repro.experiments.runner import ReproductionReport, run_all
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import Table5Result, run_table5

__all__ = [
    "run_network_study",
    "NetworkStudyResult",
    "run_table2",
    "Table2Result",
    "run_table4",
    "Table4Result",
    "run_table5",
    "Table5Result",
    "run_fig5",
    "Fig5Result",
    "run_fig9",
    "Fig9Result",
    "run_fig10",
    "Fig10Result",
    "run_all",
    "ReproductionReport",
]
