"""Run every paper experiment and collect a reproduction report.

``python -m repro.experiments.runner`` prints the full paper-vs-measured
report; :func:`run_all` returns the structured results so the benchmark
harness and EXPERIMENTS.md generation can reuse them.

Machine-readable exports:

* ``python -m repro.experiments.runner --json`` emits the headline numbers
  as JSON (the ``BENCH_*.json`` trajectory consumes this to track
  paper-vs-measured drift across PRs);
* ``python -m repro.experiments.runner --write-md [PATH]`` regenerates
  ``EXPERIMENTS.md`` (the committed document docstrings refer to).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.fig10 import Fig10Result, run_fig10
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import Table5Result, run_table5


@dataclass(frozen=True)
class ReproductionReport:
    """All paper artifacts regenerated in one pass."""

    table2: Table2Result
    table4: Table4Result
    table5: Table5Result
    fig5: Fig5Result
    fig9: Fig9Result
    fig10: Fig10Result

    def report(self) -> str:
        """Concatenated human-readable report."""
        sections = [
            self.table2.report(),
            self.fig5.report(),
            self.fig9.report(),
            self.table4.report(),
            self.fig10.report(),
            self.table5.report(),
        ]
        divider = "\n" + "=" * 78 + "\n"
        return divider.join(sections)

    def headline(self) -> Dict[str, float]:
        """One-dictionary summary of the most important reproduced numbers."""
        return {
            "min_pe_utilization_pct": self.table2.minimum_efficiency_pct,
            "fps_batch128": self.fig9.measured_fps_batch128,
            "fps_batch4": self.fig9.measured_fps_batch4,
            "peak_gops": self.fig9.measured_peak_gops,
            "total_power_mw_calibrated": self.fig10.calibrated.total_w * 1e3,
            "gops_per_watt_calibrated": self.fig10.measured_efficiency(),
            "modelled_efficiency_ratio_min": self.table5.modelled_ratio_range[0],
            "modelled_efficiency_ratio_max": self.table5.modelled_ratio_range[1],
            "modelled_area_ratio": self.table5.modelled_area_ratio,
        }


def run_all() -> ReproductionReport:
    """Regenerate every table and figure of the paper's evaluation."""
    return ReproductionReport(
        table2=run_table2(),
        table4=run_table4(),
        table5=run_table5(),
        fig5=run_fig5(),
        fig9=run_fig9(),
        fig10=run_fig10(),
    )


def headline_json(report: Optional[ReproductionReport] = None) -> Dict[str, Any]:
    """The reproduction headline as a JSON-serialisable document.

    The ``headline`` block mirrors :meth:`ReproductionReport.headline`; the
    ``fig9_deviation`` block adds the per-layer paper-vs-measured ratios so a
    trajectory of these files shows *where* drift happens, not only that it
    does.
    """
    report = report or run_all()
    fig9 = report.fig9
    return {
        "schema": "repro-headline/1",
        "headline": report.headline(),
        "fig9_deviation": {
            "conv_time_ratio": fig9.conv_time_ratio(),
            "worst_layer_deviation": fig9.worst_layer_deviation(),
        },
    }


def design_space_section(bench_path: str | Path = "BENCH_sweep.json") -> str:
    """The design-space-exploration chapter of EXPERIMENTS.md.

    Documents the grid syntax and the Pareto output, and quotes the measured
    columnar-vs-scalar sweep throughput from ``BENCH_sweep.json`` when the
    benchmark has been run (``pytest benchmarks/bench_batch_sweep.py``).
    """
    lines = [
        "## Design-space exploration",
        "",
        "Dense grids are evaluated through the columnar `analytical-batch`",
        "engine (struct-of-arrays NumPy expressions over the same closed",
        "forms as the scalar models — numerically identical, asserted by",
        "`tests/test_batch_sweep.py`).",
        "",
        "Grid syntax (CLI `repro sweep --grid` / `repro pareto --grid`):",
        "",
        "```text",
        "pe=128:1152:32,freq=200:1000:50[,batch=1:128:16][,bits=16]",
        "```",
        "",
        "Axes: `pe` (chain length), `freq` (MHz), `batch`, `bits` (datapath",
        "width, multiples of 8).  Ranges are `start:stop:step` with an",
        "inclusive stop; omitted axes default to the `--pes`/`--frequency-mhz`",
        "configuration.  `--pareto` reduces the grid to its frontier",
        "(minimising `total_time_per_batch_s`, `power_w` and `total_gates` by",
        "default; override with `--objectives col1,col2,...`); `--top K",
        "--metric NAME` ranks by a single column.  `--json` emits the",
        "reduction as `{grid, engine, n_points, pareto: {objectives, points},",
        "top: {metric, points}}`, where each point row carries PEs, frequency,",
        "batch, bits, peak/achieved GOPS, fps, power, GOPS/W, worst-case",
        "utilization and gate count.",
        "",
    ]
    bench_path = Path(bench_path)
    bench = None
    if bench_path.is_file():
        try:
            bench = json.loads(bench_path.read_text(encoding="utf-8"))
        except ValueError:
            bench = None
    if bench and "batch_points_per_s" in bench:
        lines += [
            "Measured sweep throughput (`BENCH_sweep.json`, "
            f"{bench.get('n_points', '?')}-point grid `{bench.get('grid', '?')}`):",
            "",
            "| path | points/s |",
            "| --- | --- |",
            f"| columnar (`analytical-batch`) | {bench['batch_points_per_s']:,.0f} |",
            f"| scalar per-point | {bench.get('scalar_points_per_s', 0):,.0f} |",
            "",
            f"Speedup: **{bench.get('speedup_vs_scalar', 0):,.0f}x** "
            f"({bench.get('batch_ns_per_point', 0):,.0f} ns/point).",
        ]
    else:
        lines += [
            "Measured throughput: run `pytest benchmarks/bench_batch_sweep.py`",
            "to populate `BENCH_sweep.json` (the numbers quoted here are",
            "regenerated from it).",
        ]
    return "\n".join(lines)


def functional_verification_section(
        bench_path: str | Path = "BENCH_functional.json") -> str:
    """The functional-verification-throughput chapter of EXPERIMENTS.md.

    Documents the ``repro verify --sim functional`` workflow and quotes the
    measured scalar-vs-vectorized backend speedup from
    ``BENCH_functional.json`` when the benchmark has been run
    (``pytest benchmarks/bench_functional.py``).
    """
    lines = [
        "## Functional verification throughput",
        "",
        "The functional (dataflow-level) simulator enumerates every scan",
        "window of the Chain-NN stripe/column-scan decomposition.  Its",
        "vectorized NumPy backend evaluates whole window grids per channel",
        "pair at once and derives the dataflow counters in closed form —",
        "bit-identical ofmaps and identical `FunctionalRunStats` to the",
        "scalar per-window walk (asserted by",
        "`tests/test_sim_functional_vectorized.py`), which turns",
        "whole-network dataflow verification into a seconds-scale CI step:",
        "",
        "```text",
        "repro verify --sim functional                     # tiny net, scalar-vs-vectorized cross-check",
        "repro verify --sim functional --network alexnet   # full AlexNet, vectorized + golden reference",
        "repro verify --sim functional --network vgg16 --backend vectorized",
        "```",
        "",
        "Between conv stages the runner applies ReLU, re-quantises the",
        "activations onto the 16-bit fixed-point grid (`repro.cnn.quantize`)",
        "and applies pooling in NumPy, so the chained shapes and dynamic",
        "ranges stay faithful to the fixed-point inference flow the paper's",
        "MatConvNet-integrated simulator modelled.",
        "",
    ]
    bench_path = Path(bench_path)
    bench = None
    if bench_path.is_file():
        try:
            bench = json.loads(bench_path.read_text(encoding="utf-8"))
        except ValueError:
            bench = None
    if bench and "speedup_vs_scalar" in bench:
        lines += [
            f"Measured backend throughput (`BENCH_functional.json`, AlexNet "
            f"`{bench.get('layer', '?')}`):",
            "",
            "| path | seconds | windows/s |",
            "| --- | --- | --- |",
            f"| vectorized | {bench.get('vectorized_seconds', 0):.2f} | "
            f"{bench.get('vectorized_windows_per_s', 0):,.0f} |",
            f"| scalar walk | {bench.get('scalar_seconds', 0):.1f} | "
            f"{bench.get('windows_evaluated', 0) / bench['scalar_seconds']:,.0f} |"
            if bench.get("scalar_seconds") else "| scalar walk | — | — |",
            "",
            f"Speedup: **{bench['speedup_vs_scalar']:,.0f}x** over the scalar",
            "walk (scalar seconds extrapolated per channel pair from a",
            f"{bench.get('scalar_probe_pairs', '?')}-pair probe with identical",
            "per-pair geometry).",
        ]
        if "alexnet_verify_seconds" in bench:
            lines += [
                "Whole-network AlexNet verification: "
                f"**{bench['alexnet_verify_seconds']:.1f}s** "
                f"({bench.get('alexnet_verify_windows_kept', 0):,} windows kept, "
                f"max abs error {bench.get('alexnet_verify_max_abs_error', 0):.1e}).",
            ]
    else:
        lines += [
            "Measured throughput: run `pytest benchmarks/bench_functional.py`",
            "to populate `BENCH_functional.json` (the numbers quoted here are",
            "regenerated from it).",
        ]
    return "\n".join(lines)


def mapping_search_section(bench_path: str | Path = "BENCH_mapping.json") -> str:
    """The mapping-search chapter of EXPERIMENTS.md.

    Documents the ``repro map`` workflow and quotes the measured
    baseline-vs-searched objective values from ``BENCH_mapping.json`` when
    the benchmark has been run (``pytest benchmarks/bench_mapping.py``).
    """
    lines = [
        "## Mapping search",
        "",
        "The paper maps every layer with one fixed decomposition (Table II:",
        "`floor(P/K^2)` primitives, full `K`-row stripes, kernels streamed in",
        "kMemory-sized chunks, batch-interleaved kernel loads).  `repro map`",
        "searches the space of legal alternatives per layer — primitive",
        "partition, stripe height, kernel-streaming chunk, batch interleave —",
        "for a chosen objective, scoring candidates through the columnar",
        "`MappingBatchEvaluator` and assembling a schedule that is never",
        "worse than the Table II baseline by construction:",
        "",
        "```text",
        "repro map --network alexnet --objective latency --strategy exhaustive --verify",
        "repro map --network vgg16 --objective energy --strategy anneal --seed 2017",
        "```",
        "",
        "Objectives: `latency` (first-image), `throughput` (batch makespan),",
        "`energy` (J/batch), `edp` (energy x delay).  Every searched mapping",
        "is functionally verified: the vectorized functional simulator runs",
        "the candidate's exact stripe plan and the ofmaps must be",
        "bit-identical to the baseline full-stripe simulation and match the",
        "im2col golden reference to float round-off (`--verify`,",
        "`tests/test_mapping.py`).",
        "",
    ]
    bench_path = Path(bench_path)
    bench = None
    if bench_path.is_file():
        try:
            bench = json.loads(bench_path.read_text(encoding="utf-8"))
        except ValueError:
            bench = None
    if bench and "networks" in bench:
        lines += [
            f"Measured schedules (`BENCH_mapping.json`, batch "
            f"{bench.get('batch', '?')}, `{bench.get('strategy', '?')}` "
            "strategy; objective values are seconds for latency/throughput,",
            "joules for energy, joule-seconds for EDP; lower is better):",
            "",
            "| network | objective | Table II baseline | searched | gain |",
            "| --- | --- | --- | --- | --- |",
        ]
        for network in sorted(bench["networks"]):
            entry = bench["networks"][network]
            for objective in sorted(entry.get("objectives", {})):
                row = entry["objectives"][objective]
                lines.append(
                    f"| {network} | {objective} | {row['baseline']:.6g} | "
                    f"{row['searched']:.6g} | "
                    f"{row['improvement_pct']:.2f} % |"
                )
        lines.append("")
        for network in sorted(bench["networks"]):
            verification = bench["networks"][network].get("verification")
            if verification:
                status = "passed" if verification.get("passed") else "FAILED"
                lines.append(
                    f"Verification on {network}: {status} "
                    f"({verification.get('distinct_mappings', '?')} distinct "
                    f"mappings, max abs error "
                    f"{verification.get('max_abs_error', 0):.1e} vs the "
                    "im2col golden reference, bit-identical to the baseline "
                    "stripe plan).")
    else:
        lines += [
            "Measured schedules: run `pytest benchmarks/bench_mapping.py` to",
            "populate `BENCH_mapping.json` (the numbers quoted here are",
            "regenerated from it).",
        ]
    return "\n".join(lines)


def parallel_runtime_section(bench_path: str | Path = "BENCH_parallel.json") -> str:
    """The parallel-runtime chapter of EXPERIMENTS.md.

    Documents the ``--workers`` workflow and quotes the measured
    worker-count scaling curve from ``BENCH_parallel.json`` when the
    benchmark has been run (``repro bench parallel``).
    """
    lines = [
        "## Parallel runtime",
        "",
        "Sweeps, mapping search and whole-network functional verification",
        "fan out over `repro.runtime` — persistent worker processes with",
        "zero-copy shared-memory tensors (`multiprocessing.shared_memory`),",
        "ordered result assembly and graceful serial degradation on",
        "platforms without process pools.  Results are **bit-identical**",
        "serial or parallel (the CI equivalence gate holds",
        "`tests/test_runtime.py` to that), so `--workers` only changes",
        "wall-clock time:",
        "",
        "```text",
        "repro verify --sim functional --network vgg16 --workers 4",
        "repro map --network vgg16 --objective energy --workers 4",
        "repro sweep pes --network alexnet --workers 4",
        "repro run alexnet --engine functional-vectorized --workers 4",
        "```",
        "",
    ]
    bench_path = Path(bench_path)
    bench = None
    if bench_path.is_file():
        try:
            bench = json.loads(bench_path.read_text(encoding="utf-8"))
        except ValueError:
            bench = None
    if bench and "verify_scaling" in bench:
        lines += [
            f"Measured scaling (`BENCH_parallel.json`, whole-network",
            f"functional verification of `{bench.get('network', '?')}` on a",
            f"{bench.get('cpu_count', '?')}-core machine; serial baseline "
            f"{bench.get('verify_serial_seconds', 0):.2f} s):",
            "",
            "| workers | seconds | speedup vs serial |",
            "| --- | --- | --- |",
        ]
        scaling = bench["verify_scaling"]
        for workers in sorted(scaling, key=int):
            entry = scaling[workers]
            lines.append(
                f"| {workers} | {entry.get('seconds', 0):.2f} | "
                f"{entry.get('speedup_vs_serial', 0):.2f}x |"
            )
        lines += [
            "",
            f"Mapping search (exhaustive, per-layer fan-out): "
            f"{bench.get('map_serial_seconds', 0):.2f} s serial vs "
            f"{bench.get('map_parallel_seconds', 0):.2f} s parallel; "
            f"axis sweep: {bench.get('sweep_serial_seconds', 0):.3f} s serial "
            f"vs {bench.get('sweep_parallel_seconds', 0):.3f} s parallel "
            "(persistent pool, engines and network shipped to workers once).",
            "",
            "Speedups track the physical core count: single-core CI runners",
            "record ~1x by construction while the bit-identity assertions",
            "still hold; on a 4+-core machine the benchmark enforces >=3x",
            "on 4-worker verification in timing mode.",
        ]
    else:
        lines += [
            "Measured scaling: run `repro bench parallel` to populate",
            "`BENCH_parallel.json` (the numbers quoted here are regenerated",
            "from it).",
        ]
    return "\n".join(lines)


def fault_tolerance_section(bench_path: str | Path = "BENCH_faults.json") -> str:
    """The fault-tolerance chapter of EXPERIMENTS.md.

    Documents the supervised runtime and the hardened cache, and quotes the
    measured supervision overhead / recovery latency from
    ``BENCH_faults.json`` when the benchmark has been run
    (``repro bench faults``).
    """
    lines = [
        "## Fault tolerance",
        "",
        "The parallel runtime is supervised: per-task deadlines recover",
        "hung workers, dead workers are respawned (with exponential",
        "backoff and broadcast-context replay) and their in-flight tasks",
        "retried, poison tasks are quarantined to serial parent execution,",
        "and with no parallel capacity left the run drains serially — the",
        "degradation ladder parallel -> respawn -> serial, every rung",
        "**bit-identical** (tasks are pure functions of their payloads).",
        "Chaos is injected deterministically: `$REPRO_FAULT_SPEC` (e.g.",
        "`crash:p=0.2,seed=7,attempts=1`) maps `(task_id, attempt)`",
        "through SHA-256 to fault decisions, so the same seed exercises",
        "the same recovery path on every run — `tests/test_faults.py`",
        "holds sweep/map/verify to serial bit-identity under that plan,",
        "and an 8-process stress test holds the `RunCache` (advisory",
        "locking, corrupt-entry quarantine, orphan reaping, size-bounded",
        "LRU eviction) to zero lost or torn records:",
        "",
        "```text",
        "REPRO_FAULT_SPEC='crash:p=0.2,seed=7,attempts=1' \\",
        "    repro --task-deadline 5 verify --sim functional --workers 4",
        "repro sweep pes --workers 4 --cache-dir /tmp/cache --cache-max-mb 64",
        "repro bench faults --timing",
        "```",
        "",
    ]
    bench_path = Path(bench_path)
    bench = None
    if bench_path.is_file():
        try:
            bench = json.loads(bench_path.read_text(encoding="utf-8"))
        except ValueError:
            bench = None
    if bench and bench.get("pools_available"):
        lines += [
            f"Measured (`BENCH_faults.json`, {bench.get('points', '?')}-point",
            f"analytical sweep over {bench.get('workers', '?')} workers; chaos",
            f"plan `{bench.get('fault_spec', '?')}`):",
            "",
            "| metric | value |",
            "| --- | --- |",
            f"| supervision overhead (no-fault path) | "
            f"{bench.get('supervision_overhead_pct', 0):.1f}% |",
            f"| worker deaths under chaos | "
            f"{bench.get('chaos_worker_deaths', 0)} |",
            f"| respawns / retries | {bench.get('chaos_respawns', 0)} / "
            f"{bench.get('chaos_retries', 0)} |",
            f"| recovery latency per death | "
            f"{bench.get('recovery_latency_seconds_per_death', 0) * 1e3:.1f} ms |",
            f"| results bit-identical to serial | "
            f"{bench.get('bit_identical', False)} |",
            "",
            "The 5% overhead budget is asserted in timing mode; the",
            "recovery latency is dominated by the respawn backoff plus the",
            "broadcast replay into the fresh worker.",
        ]
    else:
        lines += [
            "Measured overhead and recovery latency: run `repro bench",
            "faults` to populate `BENCH_faults.json` (the numbers quoted",
            "here are regenerated from it).",
        ]
    return "\n".join(lines)


def compiled_kernels_section(bench_path: str | Path = "BENCH_kernels.json") -> str:
    """The compiled-kernels chapter of EXPERIMENTS.md.

    Documents the pluggable ``repro.kernels`` backend layer and quotes the
    measured numpy-vs-numba numbers from ``BENCH_kernels.json`` when the
    benchmark has been run (``repro bench kernels``).
    """
    lines = [
        "## Compiled kernels",
        "",
        "The two hottest inner loops — the functional simulator's ofmap",
        "block product and the mapping-candidate scorer — dispatch through",
        "the pluggable `repro.kernels` registry: a `numpy` reference backend",
        "and a `numba` JIT backend that reproduces NumPy's pairwise",
        "summation order, so the backends are **bit-identical** (held by",
        "`tests/test_kernels.py` in the CI equivalence gate) and the",
        "selection (`--kernel-backend`, `$REPRO_KERNEL_BACKEND`, or",
        "autodetection) only changes wall-clock time:",
        "",
        "```text",
        "repro --kernel-backend numba verify --sim functional --network vgg16",
        "repro bench kernels --timing",
        "```",
        "",
    ]
    bench_path = Path(bench_path)
    bench = None
    if bench_path.is_file():
        try:
            bench = json.loads(bench_path.read_text(encoding="utf-8"))
        except ValueError:
            bench = None
    if bench and "ofmap_numpy_seconds" in bench:
        backends = ", ".join(bench.get("backends_available", []) or ["numpy"])
        lines += [
            f"Measured (`BENCH_kernels.json`, backends available: {backends};"
            f" numba {bench.get('numba_version') or 'not installed'}):",
            "",
            "| kernel | numpy seconds | numba seconds | speedup |",
            "| --- | --- | --- | --- |",
        ]
        for prefix, label in (("ofmap", f"ofmap block product "
                                        f"(`{bench.get('ofmap_layer', '?')}`)"),
                              ("scorer", f"candidate scorer "
                                         f"({bench.get('scorer_candidates', 0):,}"
                                         f" candidates)")):
            numpy_s = bench.get(f"{prefix}_numpy_seconds")
            numba_s = bench.get(f"{prefix}_numba_seconds")
            speedup = bench.get(f"{prefix}_speedup_numba_vs_numpy")
            lines.append(
                f"| {label} | "
                f"{numpy_s:.3f} | "
                + (f"{numba_s:.3f} | {speedup:.1f}x |" if numba_s
                   else "— | — (numba not installed) |")
            )
        lines += [
            "",
            "Without numba the registry serves the reference backend (with a",
            "one-line warning when numba was explicitly requested), so the",
            "speedup column only appears on numba-equipped runners; the",
            "timing-mode floors are 5x (ofmap) and 3x (scorer).",
        ]
    else:
        lines += [
            "Measured speedups: run `repro bench kernels` to populate",
            "`BENCH_kernels.json` (the numbers quoted here are regenerated",
            "from it).",
        ]
    return "\n".join(lines)


def winograd_execution_section(bench_path: str | Path = "BENCH_winograd.json") -> str:
    """The Winograd-execution chapter of EXPERIMENTS.md.

    Documents the F(2x2,3x3) transform-domain fast path and the per-layer
    algorithm axis, quoting the modeled MAC reduction / transform overhead
    and the auto-vs-direct search results from ``BENCH_winograd.json`` when
    the benchmark has been run (``repro bench winograd``).
    """
    lines = [
        "## Winograd execution",
        "",
        "Every 3x3 stride-1 convolution can run in the Winograd F(2x2,3x3)",
        "transform domain: 4x4 input tiles become 2x2 output tiles through",
        "16 element-wise multiplies instead of 36 direct MACs (2.25x fewer",
        "multiplies before the input/output transform overhead).  The axis",
        "is opt-in per layer — `repro map --algorithm auto` lets the search",
        "choose `direct` or `winograd` independently for each eligible",
        "layer, and the schedule stays **never worse** than direct-only by",
        "construction (the direct candidate set is always enumerated too):",
        "",
        "```text",
        "repro map --network vgg16 --objective throughput --algorithm auto",
        "repro run --engine functional-vectorized --algorithm winograd",
        "repro verify --sim functional --network vgg16 --algorithm winograd",
        "repro networks --json   # per-layer eligibility + MAC coverage",
        "```",
        "",
        "The functional Winograd backend is bit-identical across kernel",
        "backends and block partitions, and matches the im2col golden",
        "reference within `1e-6` relative to the accumulator scale",
        "(`tests/test_winograd.py` in the CI equivalence gate).  The cost",
        "model charges the 16/9 kMemory inflation of transformed filters,",
        "a 1.25x PE energy factor and the tile transforms, so `auto`",
        "typically keeps energy-objective schedules on `direct` and flips",
        "throughput-objective VGG-16 layers to `winograd`.",
        "",
    ]
    bench_path = Path(bench_path)
    bench = None
    if bench_path.is_file():
        try:
            bench = json.loads(bench_path.read_text(encoding="utf-8"))
        except ValueError:
            bench = None
    if bench and "networks" in bench:
        min_reduction = bench.get("vgg16_min_mac_reduction")
        speedup = bench.get("vgg16_throughput_cycle_speedup")
        lines += [
            f"Measured (`BENCH_winograd.json`, batch {bench.get('batch', '?')},"
            f" `{bench.get('strategy', '?')}` strategy): worst eligible VGG-16"
            f" layer keeps a {min_reduction:.2f}x modeled multiply reduction"
            if isinstance(min_reduction, (int, float)) else
            f"Measured (`BENCH_winograd.json`, batch {bench.get('batch', '?')}):",
        ]
        if isinstance(speedup, (int, float)):
            lines[-1] += (f" and the algorithm axis buys a {speedup:.3f}x"
                          " cycle speedup on VGG-16 throughput.")
        lines.append("")
        vgg = bench["networks"].get("vgg16", {})
        if vgg.get("layers"):
            lines += [
                "| VGG-16 layer | direct MACs | Winograd multiplies | "
                "reduction | transform overhead |",
                "| --- | --- | --- | --- | --- |",
            ]
            for summary in vgg["layers"]:
                lines.append(
                    f"| {summary['layer']} | {summary['direct_macs']:,} | "
                    f"{summary['winograd_multiplies']:,} | "
                    f"{summary['mac_reduction']:.2f}x | "
                    f"{summary['transform_overhead_fraction'] * 100:.1f} % |"
                )
            lines.append("")
        lines += [
            "Auto-vs-direct search (objective values: lower is better; the",
            "never-worse assertion holds for every network x objective):",
            "",
            "| network | objective | direct-only | auto | gain | "
            "winograd layers |",
            "| --- | --- | --- | --- | --- | --- |",
        ]
        for network in sorted(bench["networks"]):
            entry = bench["networks"][network]
            for objective in sorted(entry.get("objectives", {})):
                row = entry["objectives"][objective]
                lines.append(
                    f"| {network} | {objective} | {row['direct']:.6g} | "
                    f"{row['auto']:.6g} | {row['improvement_pct']:.2f} % | "
                    f"{len(row.get('winograd_layers', []))} |"
                )
    else:
        lines += [
            "Measured numbers: run `repro bench winograd` to populate",
            "`BENCH_winograd.json` (the numbers quoted here are regenerated",
            "from it).",
        ]
    return "\n".join(lines)


def observability_section(bench_path: str | Path = "BENCH_obs.json") -> str:
    """The observability chapter of EXPERIMENTS.md.

    Documents the unified tracing/metrics layer and quotes the measured
    overhead budgets from ``BENCH_obs.json`` when the benchmark has been
    run (``repro bench obs``).
    """
    lines = [
        "## Observability",
        "",
        "Every command can record a wall-clock span trace of itself:",
        "`--trace FILE` exports Chrome trace-event JSON covering the CLI,",
        "engines, cache, mapping search and every pool worker merged onto",
        "one timeline (workers ship completed spans and metric deltas back",
        "over the result channel; `time.monotonic` is system-wide on",
        "Linux, so no clock offset arithmetic is needed).  `--metrics`",
        "dumps the always-on metrics registry — cache hits/misses/",
        "evictions/lock waits, sweep points, mapping candidates",
        "enumerated/pruned/scored, supervisor retries/respawns/deadline",
        "kills, kernel backend dispatches — and `sweep`/`map` print a",
        "one-line stats footer from the same registry even untraced:",
        "",
        "```text",
        "repro --trace sweep.json --metrics sweep pes --workers 4",
        "repro trace summarize sweep.json   # or load in ui.perfetto.dev",
        "repro map --network alexnet        # footer: candidates/s, cache",
        "repro bench obs --timing           # asserts the overhead budgets",
        "```",
        "",
        "Only *closed* spans are recorded, so a merged trace structurally",
        "cannot contain unclosed spans even when chaos kills workers",
        "mid-task (`tests/test_obs.py` validates the merged trace under a",
        "crash-every-first-attempt fault plan); cycle-domain simulator",
        "traces (`repro.sim.trace`) remain a separate, unrelated layer.",
        "",
    ]
    bench_path = Path(bench_path)
    bench = None
    if bench_path.is_file():
        try:
            bench = json.loads(bench_path.read_text(encoding="utf-8"))
        except ValueError:
            bench = None
    if bench:
        lines += [
            f"Measured (`BENCH_obs.json`, {bench.get('sweep_points', '?')}-point",
            "analytical sweep + greedy AlexNet mapping search):",
            "",
            "| metric | value |",
            "| --- | --- |",
            f"| tracing disabled: estimated overhead | "
            f"{bench.get('disabled_overhead_pct', 0):.3f}% (budget 1%) |",
            f"| disabled span / counter cost | "
            f"{bench.get('disabled_span_ns', 0):.0f} ns / "
            f"{bench.get('disabled_counter_inc_ns', 0):.0f} ns |",
            f"| tracing enabled: wall-clock overhead | "
            f"{bench.get('enabled_overhead_pct', 0):.1f}% (budget 5%) |",
            f"| span events / metric increments per run | "
            f"{bench.get('span_events_per_run', 0)} / "
            f"{bench.get('metric_increments_per_run', 0)} |",
            f"| merged parallel trace | {bench.get('merged_trace_spans', 0)} "
            f"spans across {bench.get('merged_trace_processes', 0)} "
            "processes |",
            f"| bit-identical serial / parallel | "
            f"{bench.get('bit_identical_serial', False)} / "
            f"{bench.get('bit_identical_parallel', False)} |",
        ]
    else:
        lines += [
            "Measured overhead: run `repro bench obs` to populate",
            "`BENCH_obs.json` (the numbers quoted here are regenerated",
            "from it).",
        ]
    return "\n".join(lines)


def evaluation_service_section(bench_path: str | Path = "BENCH_serve.json") -> str:
    """The evaluation-service chapter of EXPERIMENTS.md.

    Documents ``repro serve`` (the coalescing evaluation service) and the
    sqlite-indexed shared run cache, quoting the measured throughput and
    lookup latencies from ``BENCH_serve.json`` when the benchmark has
    been run (``repro bench serve``).
    """
    lines = [
        "## Evaluation service throughput",
        "",
        "`repro serve` turns the engine stack into a long-running service:",
        "concurrent `run`/`sweep`/`map`/`verify` requests over HTTP/JSON,",
        "with compatible sweep requests arriving within a few-millisecond",
        "window coalesced into one columnar `evaluate_batch` call and the",
        "per-request slices scattered back (byte-identical to `repro",
        "<cmd> --json`; `tests/test_serve.py` pins this, chaos leg",
        "included).  The shared `RunCache` gains a WAL-mode sqlite index",
        "so lookups, stats and LRU eviction stop scaling with the record",
        "count while staying safe for 8+ concurrent processes:",
        "",
        "```text",
        "repro serve --port 8347            # start the service",
        "repro request sweep '{\"grid\": \"pe=128:1152:64\"}'",
        "repro cache stats                  # index health",
        "repro cache migrate                # reconcile index <-> directory",
        "repro bench serve --timing         # asserts the 5x floor",
        "```",
        "",
    ]
    bench_path = Path(bench_path)
    bench = None
    if bench_path.is_file():
        try:
            bench = json.loads(bench_path.read_text(encoding="utf-8"))
        except ValueError:
            bench = None
    if bench:
        lines += [
            f"Measured (`BENCH_serve.json`, {bench.get('points', '?')}-point",
            f"mixed workload from {bench.get('clients', '?')} concurrent",
            f"clients, {bench.get('window_ms', '?')} ms window):",
            "",
            "| metric | value |",
            "| --- | --- |",
            f"| sequential single-point requests | "
            f"{bench.get('sequential_points_per_s', 0):.0f} points/s |",
            f"| coalesced concurrent clients | "
            f"{bench.get('coalesced_points_per_s', 0):.0f} points/s "
            f"({bench.get('coalesce_speedup', 0):.1f}x, floor 5x) |",
            f"| coalesced batches | {bench.get('coalesced_batches', 0)} "
            f"({bench.get('mean_points_per_batch', 0):.0f} points/batch) |",
            f"| queue wait p50 / p99 | "
            f"{bench.get('queue_wait_p50_ms', 0):.1f} ms / "
            f"{bench.get('queue_wait_p99_ms', 0):.1f} ms |",
            f"| indexed hit lookup ({bench.get('index_records', '?')}-record "
            f"cache) | {bench.get('index_lookup_us', 0):.0f} us vs "
            f"{bench.get('scan_lookup_us', 0):.0f} us file scan "
            f"({bench.get('lookup_speedup', 0):.0f}x) |",
            f"| cache stats: indexed vs directory walk | "
            f"{bench.get('quick_stats_ms', 0):.2f} ms vs "
            f"{bench.get('stats_scan_ms', 0):.1f} ms |",
        ]
    else:
        lines += [
            "Measured throughput: run `repro bench serve` to populate",
            "`BENCH_serve.json` (the numbers quoted here are regenerated",
            "from it).",
        ]
    return "\n".join(lines)


def render_experiments_md(report: Optional[ReproductionReport] = None,
                          bench_path: str | Path = "BENCH_sweep.json",
                          functional_bench_path: str | Path = "BENCH_functional.json",
                          mapping_bench_path: str | Path = "BENCH_mapping.json",
                          parallel_bench_path: str | Path = "BENCH_parallel.json",
                          kernels_bench_path: str | Path = "BENCH_kernels.json",
                          faults_bench_path: str | Path = "BENCH_faults.json",
                          winograd_bench_path: str | Path = "BENCH_winograd.json",
                          obs_bench_path: str | Path = "BENCH_obs.json",
                          serve_bench_path: str | Path = "BENCH_serve.json",
                          ) -> str:
    """EXPERIMENTS.md content: every paper artifact, paper vs measured."""
    report = report or run_all()
    headline_rows = "\n".join(
        f"| `{key}` | {value:.4g} |" for key, value in report.headline().items()
    )
    sections = [
        ("Table II — PE utilization", report.table2.report()),
        ("Fig. 5 — dual-channel vs single-channel PEs", report.fig5.report()),
        ("Fig. 9 — AlexNet timing", report.fig9.report()),
        ("Table IV — memory traffic", report.table4.report()),
        ("Fig. 10 — power breakdown", report.fig10.report()),
        ("Table V — state of the art", report.table5.report()),
    ]
    body = "\n\n".join(
        f"## {title}\n\n```text\n{text.rstrip()}\n```" for title, text in sections
    )
    return (
        "# EXPERIMENTS — paper vs measured\n"
        "\n"
        "Regenerated by `python -m repro.experiments.runner --write-md`\n"
        "(equivalently `repro experiments`); do not edit by hand.  The same\n"
        "numbers are exported as JSON by `python -m repro.experiments.runner\n"
        "--json` so benchmark trajectories can track paper-vs-measured drift.\n"
        "\n"
        "## Headline numbers\n"
        "\n"
        "| metric | value |\n"
        "| --- | --- |\n"
        f"{headline_rows}\n"
        "\n"
        f"{body}\n"
        "\n"
        f"{design_space_section(bench_path)}\n"
        "\n"
        f"{functional_verification_section(functional_bench_path)}\n"
        "\n"
        f"{mapping_search_section(mapping_bench_path)}\n"
        "\n"
        f"{parallel_runtime_section(parallel_bench_path)}\n"
        "\n"
        f"{fault_tolerance_section(faults_bench_path)}\n"
        "\n"
        f"{compiled_kernels_section(kernels_bench_path)}\n"
        "\n"
        f"{winograd_execution_section(winograd_bench_path)}\n"
        "\n"
        f"{observability_section(obs_bench_path)}\n"
        "\n"
        f"{evaluation_service_section(serve_bench_path)}\n"
    )


def write_experiments_md(path: str | Path = "EXPERIMENTS.md",
                         report: Optional[ReproductionReport] = None) -> Path:
    """Write :func:`render_experiments_md` output to ``path``.

    ``BENCH_sweep.json`` / ``BENCH_functional.json`` / ``BENCH_mapping.json``
    are looked up next to the output file (that is where
    ``benchmarks/_record.py`` writes them — the repo root), so regeneration
    quotes the measured throughputs regardless of the caller's cwd.
    """
    path = Path(path)
    root = path.resolve().parent
    path.write_text(
        render_experiments_md(
            report,
            bench_path=root / "BENCH_sweep.json",
            functional_bench_path=root / "BENCH_functional.json",
            mapping_bench_path=root / "BENCH_mapping.json",
            parallel_bench_path=root / "BENCH_parallel.json",
            kernels_bench_path=root / "BENCH_kernels.json",
            faults_bench_path=root / "BENCH_faults.json",
            winograd_bench_path=root / "BENCH_winograd.json",
            obs_bench_path=root / "BENCH_obs.json",
            serve_bench_path=root / "BENCH_serve.json",
        ),
        encoding="utf-8",
    )
    return path


def main(argv: Optional[list] = None) -> int:
    """Print the report, or export it (``--json`` / ``--write-md``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Regenerate every paper table/figure of the evaluation",
    )
    parser.add_argument("--json", action="store_true",
                        help="emit the headline numbers as JSON instead of text")
    parser.add_argument("--write-md", nargs="?", const="EXPERIMENTS.md", default=None,
                        metavar="PATH", help="write EXPERIMENTS.md (default: ./EXPERIMENTS.md)")
    args = parser.parse_args(argv)
    report = run_all()
    if args.write_md:
        target = write_experiments_md(args.write_md, report)
        print(f"wrote {target}", file=sys.stderr)
    if args.json:
        print(json.dumps(headline_json(report), indent=2, sort_keys=True))
    if args.write_md or args.json:
        return 0
    print(report.report())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
