"""Run every paper experiment and collect a reproduction report.

``python -m repro.experiments.runner`` prints the full paper-vs-measured
report; :func:`run_all` returns the structured results so the benchmark
harness and EXPERIMENTS.md generation can reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.fig10 import Fig10Result, run_fig10
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import Table5Result, run_table5


@dataclass(frozen=True)
class ReproductionReport:
    """All paper artifacts regenerated in one pass."""

    table2: Table2Result
    table4: Table4Result
    table5: Table5Result
    fig5: Fig5Result
    fig9: Fig9Result
    fig10: Fig10Result

    def report(self) -> str:
        """Concatenated human-readable report."""
        sections = [
            self.table2.report(),
            self.fig5.report(),
            self.fig9.report(),
            self.table4.report(),
            self.fig10.report(),
            self.table5.report(),
        ]
        divider = "\n" + "=" * 78 + "\n"
        return divider.join(sections)

    def headline(self) -> Dict[str, float]:
        """One-dictionary summary of the most important reproduced numbers."""
        return {
            "min_pe_utilization_pct": self.table2.minimum_efficiency_pct,
            "fps_batch128": self.fig9.measured_fps_batch128,
            "fps_batch4": self.fig9.measured_fps_batch4,
            "peak_gops": self.fig9.measured_peak_gops,
            "total_power_mw_calibrated": self.fig10.calibrated.total_w * 1e3,
            "gops_per_watt_calibrated": self.fig10.measured_efficiency(),
            "modelled_efficiency_ratio_min": self.table5.modelled_ratio_range[0],
            "modelled_efficiency_ratio_max": self.table5.modelled_ratio_range[1],
            "modelled_area_ratio": self.table5.modelled_area_ratio,
        }


def run_all() -> ReproductionReport:
    """Regenerate every table and figure of the paper's evaluation."""
    return ReproductionReport(
        table2=run_table2(),
        table4=run_table4(),
        table5=run_table5(),
        fig5=run_fig5(),
        fig9=run_fig9(),
        fig10=run_fig10(),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Print the full reproduction report."""
    print(run_all().report())


if __name__ == "__main__":  # pragma: no cover
    main()
