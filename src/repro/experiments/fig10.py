"""Experiment: Fig. 10 — power breakdown and energy efficiency.

The paper reports 567.5 mW while sustaining 806.4 GOPS, i.e. 1421 GOPS/W,
split as: 1D chain 466.7 mW (80.8 %), kMemory 40.2 mW (8.6 %), iMemory
3.9 mW (0.8 %), oMemory 56.7 mW (9.7 %); core-only efficiency ~1.7 TOPS/W
against DaDianNao's ~3.0 TOPS/W core-only but 349.7 GOPS/W whole-chip.

The experiment produces the breakdown twice: with the representative 28 nm
unit energies (to show the model lands in the right regime uncalibrated) and
with the unit energies calibrated to the paper (used for the Table V
comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import render_comparison
from repro.baselines.specs import DADIANNAO_SPEC
from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig
from repro.energy.components import PAPER_POWER_BREAKDOWN_W, PAPER_TOTAL_POWER_W
from repro.energy.power import PowerModel, PowerReport

#: Fig. 10 reference values
PAPER_BREAKDOWN_MW: Dict[str, float] = {
    name: watts * 1e3 for name, watts in PAPER_POWER_BREAKDOWN_W.items()
}
PAPER_TOTAL_MW = PAPER_TOTAL_POWER_W * 1e3
PAPER_EFFICIENCY_GOPS_W = 1421.0
PAPER_CORE_ONLY_GOPS_W = 1727.8
PAPER_DADIANNAO_TOTAL_GOPS_W = 349.7
PAPER_DADIANNAO_CORE_GOPS_W = 3035.3


@dataclass(frozen=True)
class Fig10Result:
    """Measured and published power breakdown."""

    representative: PowerReport
    calibrated: PowerReport
    peak_gops: float

    def measured_breakdown_mw(self, calibrated: bool = True) -> Dict[str, float]:
        """Per-block power in milliwatts."""
        report = self.calibrated if calibrated else self.representative
        return {name: watts * 1e3 for name, watts in report.components_w.items()}

    def measured_efficiency(self, calibrated: bool = True) -> float:
        """Peak-throughput energy efficiency in GOPS/W."""
        report = self.calibrated if calibrated else self.representative
        return self.peak_gops / report.total_w if report.total_w else 0.0

    def report(self) -> str:
        """Human-readable paper-vs-measured report."""
        sections = [
            render_comparison(PAPER_BREAKDOWN_MW, self.measured_breakdown_mw(calibrated=False),
                              title="Fig. 10 - power breakdown, representative 28nm energies (mW)"),
            render_comparison(PAPER_BREAKDOWN_MW, self.measured_breakdown_mw(calibrated=True),
                              title="Fig. 10 - power breakdown, calibrated energies (mW)"),
            render_comparison(
                {"total power (mW)": PAPER_TOTAL_MW,
                 "energy efficiency (GOPS/W)": PAPER_EFFICIENCY_GOPS_W},
                {"total power (mW)": self.calibrated.total_w * 1e3,
                 "energy efficiency (GOPS/W)": self.measured_efficiency()},
                title="Fig. 10 - headline numbers (calibrated)"),
        ]
        return "\n\n".join(sections)

    def chain_vs_dadiannao(self) -> Dict[str, float]:
        """The Fig. 10 right-hand comparison: whole-chip and core-only GOPS/W."""
        return {
            "Chain-NN total GOPS/W": self.measured_efficiency(),
            "Chain-NN core-only GOPS/W": self.peak_gops / self.calibrated.core_only_w,
            "DaDianNao total GOPS/W (published)": DADIANNAO_SPEC.energy_efficiency_gops_w,
            "DaDianNao core-only GOPS/W (published)": PAPER_DADIANNAO_CORE_GOPS_W,
        }


def run_fig10(config: ChainConfig | None = None, batch: int = 4) -> Fig10Result:
    """Regenerate Fig. 10."""
    config = config or ChainConfig()
    network = alexnet()
    representative_model = PowerModel(config)
    representative = representative_model.network_power(network, batch)
    calibrated_model = representative_model.calibrated_to_paper(network, batch)
    calibrated = calibrated_model.network_power(network, batch)
    return Fig10Result(
        representative=representative,
        calibrated=calibrated,
        peak_gops=config.peak_gops,
    )
