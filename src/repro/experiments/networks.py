"""Extension experiment: the other networks the paper prepared test data for.

Sec. V.A states the float-to-fixed simulator generated test vectors for
MNIST, CIFAR-10, AlexNet *and VGG-16*, but the evaluation section only
reports AlexNet.  This experiment completes the picture: it runs every zoo
network through the same models and reports throughput, utilization, power
and the kMemory pressure — showing where the 576-PE chain shines (uniform
3x3-dominated networks like VGG keep 100 % of the PEs busy) and where its
limits are (tiny networks cannot amortise kernel loading).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import render_dict_table
from repro.cnn.zoo import NETWORKS, get_network
from repro.core.accelerator import ChainNN
from repro.core.kernel_loader import KernelLoader
from repro.core.scheduler import BatchScheduler


@dataclass(frozen=True)
class NetworkStudyRow:
    """Headline numbers of one network on the paper's Chain-NN instantiation."""

    network_name: str
    batch: int
    conv_layers: int
    macs_per_image: int
    fps: float
    achieved_gops: float
    efficiency_vs_peak: float
    worst_spatial_utilization: float
    kernel_load_fraction: float
    max_weights_per_pe: int

    def as_row(self) -> Dict[str, float]:
        """Row for the report table."""
        return {
            "conv layers": self.conv_layers,
            "MACs/image (M)": self.macs_per_image / 1e6,
            "fps": self.fps,
            "achieved GOPS": self.achieved_gops,
            "of peak (%)": self.efficiency_vs_peak * 100.0,
            "worst spatial util. (%)": self.worst_spatial_utilization * 100.0,
            "kernel-load share (%)": self.kernel_load_fraction * 100.0,
            "max weights/PE": self.max_weights_per_pe,
        }


@dataclass(frozen=True)
class NetworkStudyResult:
    """All zoo networks evaluated on the same chain."""

    batch: int
    rows: Dict[str, NetworkStudyRow]

    def report(self) -> str:
        """Human-readable table."""
        return render_dict_table(
            {name: row.as_row() for name, row in self.rows.items()},
            title=f"Zoo networks on the 576-PE Chain-NN (batch {self.batch})",
            row_label="network",
        )

    def vgg_sustains_higher_fraction_of_peak_than_alexnet(self) -> bool:
        """VGG-16 is all 3x3 stride-1 layers, so it uses the chain better."""
        return (self.rows["vgg16"].efficiency_vs_peak
                > self.rows["alexnet"].efficiency_vs_peak)


def run_network_study(batch: int = 16, chip: ChainNN | None = None) -> NetworkStudyResult:
    """Evaluate every zoo network on the paper configuration."""
    chip = chip or ChainNN.paper_configuration()
    scheduler = BatchScheduler(chip.config, chip.performance_model)
    loader = KernelLoader(chip.config)

    rows: Dict[str, NetworkStudyRow] = {}
    for name in NETWORKS:
        network = get_network(name)
        performance = chip.performance_model.network_performance(network, batch)
        schedule = scheduler.schedule(network, batch)
        worst_util = min(
            chip.utilization(layer.kernel_size) for layer in network.conv_layers
        )
        rows[name] = NetworkStudyRow(
            network_name=network.name,
            batch=batch,
            conv_layers=len(network.conv_layers),
            macs_per_image=network.total_conv_macs,
            fps=performance.frames_per_second,
            achieved_gops=performance.achieved_gops,
            efficiency_vs_peak=performance.efficiency_vs_peak,
            worst_spatial_utilization=worst_util,
            kernel_load_fraction=schedule.kernel_load_fraction,
            max_weights_per_pe=loader.network_kmemory_requirement(network),
        )
    return NetworkStudyResult(batch=batch, rows=rows)
