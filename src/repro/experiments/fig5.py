"""Experiment: Fig. 5 — single-channel vs dual-channel PE utilization.

Fig. 5(a) argues a single ifmap channel limits a primitive to ``1/K`` of its
peak rate; Fig. 5(b) shows the dual-channel column-wise scan reaching 100 %
after the initialisation stage.  The experiment demonstrates both claims two
ways:

* analytically, from the performance model's single- and dual-channel pair
  cycle counts; and
* empirically, from the cycle-accurate simulator's achieved MACs/cycle on a
  small layer (which also re-verifies functional correctness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import render_dict_table
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.core.config import ChainConfig
from repro.core.performance import PerformanceModel
from repro.core.scan import ColumnScanSchedule
from repro.sim.cycle import CycleAccurateChainSimulator


@dataclass(frozen=True)
class Fig5Result:
    """Utilization of the two PE variants."""

    analytical: Dict[int, Dict[str, float]]
    steady_state_dual_utilization: Dict[int, float]
    cycle_sim_macs_per_cycle: float
    cycle_sim_peak_macs_per_cycle: float

    @property
    def cycle_sim_utilization(self) -> float:
        """Achieved / peak MAC rate of the simulated primitive (includes edges)."""
        if self.cycle_sim_peak_macs_per_cycle == 0:
            return 0.0
        return self.cycle_sim_macs_per_cycle / self.cycle_sim_peak_macs_per_cycle

    def report(self) -> str:
        """Human-readable comparison."""
        table = {
            f"K={k}": {
                "single-channel peak fraction": row["single_channel"],
                "dual-channel peak fraction": row["dual_channel"],
                "speedup": row["speedup"],
                "dual steady-state util.": self.steady_state_dual_utilization[k],
            }
            for k, row in self.analytical.items()
        }
        header = render_dict_table(
            table, title="Fig. 5 - single- vs dual-channel PE throughput", row_label="kernel")
        sim_line = (
            f"cycle-accurate primitive (K=3, incl. fill/drain/edges): "
            f"{self.cycle_sim_macs_per_cycle:.2f} of {self.cycle_sim_peak_macs_per_cycle:.0f} "
            f"MACs/cycle ({self.cycle_sim_utilization * 100:.1f} %)"
        )
        return header + "\n" + sim_line


def run_fig5(kernel_sizes=(3, 5, 7, 9, 11), config: ChainConfig | None = None) -> Fig5Result:
    """Regenerate the Fig. 5 utilization comparison."""
    config = config or ChainConfig()
    model = PerformanceModel(config)

    analytical: Dict[int, Dict[str, float]] = {}
    steady: Dict[int, float] = {}
    for k in kernel_sizes:
        # wide feature maps keep the stripe-edge effects small so the numbers
        # reflect the steady-state behaviour Fig. 5 argues about
        layer = ConvLayer(f"synthetic_k{k}", in_channels=1, out_channels=1,
                          in_height=4 * k, in_width=32 * k, kernel_size=k)
        dual_cycles = model.pair_cycles(layer)
        single_cycles = model.single_channel_pair_cycles(layer)
        macs = layer.macs
        peak_rate = k * k  # MACs/cycle of one primitive
        analytical[k] = {
            "dual_channel": macs / (dual_cycles * peak_rate),
            "single_channel": macs / (single_cycles * peak_rate),
            "speedup": single_cycles / dual_cycles,
        }
        # steady-state utilization of a full stripe (valid windows per streaming cycle)
        schedule = ColumnScanSchedule(k, width=4 * k)
        steady[k] = schedule.utilization()

    # empirical check with the cycle-accurate simulator on a small layer
    layer = ConvLayer("fig5_sim", in_channels=2, out_channels=2, in_height=12, in_width=12,
                      kernel_size=3, padding=1)
    generator = WorkloadGenerator(seed=5)
    ifmaps, weights = generator.layer_pair(layer)
    sim = CycleAccurateChainSimulator(config)
    result = sim.run_layer(layer, ifmaps, weights)
    macs_per_cycle = result.stats.macs / result.stats.primitive_cycles

    return Fig5Result(
        analytical=analytical,
        steady_state_dual_utilization=steady,
        cycle_sim_macs_per_cycle=macs_per_cycle,
        cycle_sim_peak_macs_per_cycle=float(layer.kernel_size ** 2),
    )
