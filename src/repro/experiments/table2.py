"""Experiment: Table II — active PEs of a 576-PE systolic chain.

The paper's table (kernel size -> PEs per primitive, active primitives,
active PEs, efficiency) is reproduced from the chain-partitioning math.  Note
that the paper prints 100 % for the 9x9 row although 567/576 = 98.4 %; the
reproduction reports the exact arithmetic and flags the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import render_dict_table
from repro.core.config import MAINSTREAM_KERNEL_SIZES
from repro.core.utilization import utilization_table

#: the table exactly as printed in the paper
PAPER_TABLE2: Dict[int, Dict[str, float]] = {
    3: {"pes_per_primitive": 9, "active_primitives": 64, "active_pes": 576, "efficiency_pct": 100.0},
    5: {"pes_per_primitive": 25, "active_primitives": 23, "active_pes": 575, "efficiency_pct": 99.8},
    7: {"pes_per_primitive": 49, "active_primitives": 11, "active_pes": 539, "efficiency_pct": 93.6},
    9: {"pes_per_primitive": 81, "active_primitives": 7, "active_pes": 567, "efficiency_pct": 100.0},
    11: {"pes_per_primitive": 121, "active_primitives": 4, "active_pes": 484, "efficiency_pct": 84.0},
}


@dataclass(frozen=True)
class Table2Result:
    """Measured and published Table II."""

    measured: Dict[int, Dict[str, float]]
    paper: Dict[int, Dict[str, float]]

    @property
    def minimum_efficiency_pct(self) -> float:
        """The paper's headline "at least 84 %" number."""
        return min(row["efficiency_pct"] for row in self.measured.values())

    def max_active_pe_mismatch(self) -> int:
        """Largest |measured - paper| over the active-PE column (should be 0)."""
        return max(
            abs(int(self.measured[k]["active_pes"]) - int(self.paper[k]["active_pes"]))
            for k in self.paper
        )

    def report(self) -> str:
        """Human-readable side-by-side table."""
        side_by_side = {}
        for k in sorted(self.paper):
            side_by_side[f"K={k}"] = {
                "PEs/primitive": self.measured[k]["pes_per_primitive"],
                "active primitives": self.measured[k]["active_primitives"],
                "active PEs (measured)": self.measured[k]["active_pes"],
                "active PEs (paper)": self.paper[k]["active_pes"],
                "efficiency % (measured)": self.measured[k]["efficiency_pct"],
                "efficiency % (paper)": self.paper[k]["efficiency_pct"],
            }
        return render_dict_table(side_by_side, title="Table II - PE utilization of a 576-PE chain",
                                 row_label="kernel")


def run_table2(num_pes: int = 576) -> Table2Result:
    """Regenerate Table II."""
    measured = {}
    for kernel, entry in utilization_table(num_pes, MAINSTREAM_KERNEL_SIZES).items():
        measured[kernel] = {
            "pes_per_primitive": float(entry.pes_per_primitive),
            "active_primitives": float(entry.active_primitives),
            "active_pes": float(entry.active_pes),
            "efficiency_pct": entry.utilization * 100.0,
        }
    return Table2Result(measured=measured, paper=PAPER_TABLE2)
