"""Experiment: Fig. 9 and Sec. V.B — AlexNet layer times, kernel-load times, fps.

The paper's Fig. 9 gives the per-layer convolution and kernel-load times for
a 128-image batch at 700 MHz; Sec. V.B quotes 326.2 fps (batch 128) and
275.6 fps (batch 4), and a peak throughput of 806.4 GOPS.  This experiment
regenerates all of those from the analytical performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import render_comparison
from repro.cnn.zoo import alexnet
from repro.core.accelerator import ChainNN
from repro.engine.adapters import AnalyticalEngine

#: Fig. 9 convolution times (ms, batch = 128)
PAPER_CONV_TIME_MS: Dict[str, float] = {
    "conv1": 159.30,
    "conv2": 102.10,
    "conv3": 57.20,
    "conv4": 42.90,
    "conv5": 28.60,
}

#: Fig. 9 kernel-load times (ms, once per batch)
PAPER_KERNEL_LOAD_MS: Dict[str, float] = {
    "conv1": 0.05,
    "conv2": 0.43,
    "conv3": 1.23,
    "conv4": 0.93,
    "conv5": 0.62,
}

#: Sec. V.B headline numbers
PAPER_FPS_BATCH128 = 326.2
PAPER_FPS_BATCH4 = 275.6
PAPER_PEAK_GOPS = 806.4


@dataclass(frozen=True)
class Fig9Result:
    """Measured and published AlexNet timing."""

    measured_conv_time_ms: Dict[str, float]
    measured_kernel_load_ms: Dict[str, float]
    measured_fps_batch128: float
    measured_fps_batch4: float
    measured_peak_gops: float

    def conv_time_ratio(self) -> Dict[str, float]:
        """measured / paper per layer."""
        return {
            name: self.measured_conv_time_ms[name] / PAPER_CONV_TIME_MS[name]
            for name in PAPER_CONV_TIME_MS
        }

    def worst_layer_deviation(self) -> float:
        """Largest relative deviation from the paper's per-layer times."""
        return max(abs(ratio - 1.0) for ratio in self.conv_time_ratio().values())

    def report(self) -> str:
        """Human-readable paper-vs-measured report."""
        sections = [
            render_comparison(PAPER_CONV_TIME_MS, self.measured_conv_time_ms,
                              title="Fig. 9 - AlexNet convolution time per layer (ms, batch 128)"),
            render_comparison(PAPER_KERNEL_LOAD_MS, self.measured_kernel_load_ms,
                              title="Fig. 9 - kernel-load time per layer (ms)"),
            render_comparison(
                {"fps (batch 128)": PAPER_FPS_BATCH128,
                 "fps (batch 4)": PAPER_FPS_BATCH4,
                 "peak GOPS": PAPER_PEAK_GOPS},
                {"fps (batch 128)": self.measured_fps_batch128,
                 "fps (batch 4)": self.measured_fps_batch4,
                 "peak GOPS": self.measured_peak_gops},
                title="Sec. V.B - throughput summary"),
        ]
        return "\n\n".join(sections)


def run_fig9(chip: ChainNN | None = None) -> Fig9Result:
    """Regenerate Fig. 9 and the Sec. V.B throughput numbers.

    Timing is obtained through the unified engine layer (the analytical
    engine's run records carry the per-layer time tables Fig. 9 plots).
    """
    engine = AnalyticalEngine(chip=chip or ChainNN.paper_configuration())
    network = alexnet()
    record_128 = engine.evaluate(network, batch=128)
    record_4 = engine.evaluate(network, batch=4)
    return Fig9Result(
        measured_conv_time_ms=dict(record_128.extra["layer_times_ms"]),
        measured_kernel_load_ms=dict(record_128.extra["kernel_load_times_ms"]),
        measured_fps_batch128=record_128.metric("fps"),
        measured_fps_batch4=record_4.metric("fps"),
        measured_peak_gops=record_128.metric("peak_gops"),
    )
