"""Clock-domain model: frequency, period and cycle/time conversions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ClockDomain:
    """A single synchronous clock domain.

    Chain-NN is a single-clock design; the paper's instantiation runs the
    576-PE chain at 700 MHz (1.428 ns critical path after pipelining each PE
    into three stages).
    """

    frequency_hz: float = 700e6

    def __post_init__(self) -> None:
        check_positive("frequency_hz", self.frequency_hz)

    @property
    def period_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    @property
    def period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return self.period_s * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count into wall-clock seconds."""
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        return cycles * self.period_s

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert a duration in seconds into (fractional) cycles."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        return seconds * self.frequency_hz

    def scaled(self, factor: float) -> "ClockDomain":
        """Return a new domain with the frequency multiplied by ``factor``."""
        check_positive("factor", factor)
        return ClockDomain(frequency_hz=self.frequency_hz * factor)
