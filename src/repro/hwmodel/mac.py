"""Multiply-accumulate (MAC) unit model.

Each Chain-NN PE contains one 16-bit fixed-point MAC.  The model operates on
raw fixed-point integers, keeps per-unit operation counters (used by the
activity-based power model) and optionally models the three-stage pipelining
of the MAC path the paper uses to reach 700 MHz — pipelining changes latency,
never the numerical result.
"""

from __future__ import annotations

from typing import Optional

from repro.hwmodel.fixed_point import FixedPointFormat
from repro.hwmodel.register import Pipeline


class MacUnit:
    """A fixed-point multiply-accumulate datapath with an operation counter."""

    def __init__(
        self,
        operand_format: FixedPointFormat | None = None,
        accumulator_format: FixedPointFormat | None = None,
        pipeline_stages: int = 0,
        saturating: bool = True,
        name: str = "mac",
    ) -> None:
        self.name = name
        self.operand_format = operand_format or FixedPointFormat(16, 8)
        # Accumulators in a K x K primitive sum at most 11 x 11 = 121 products;
        # default to a width that never overflows for the supported kernels.
        self.accumulator_format = accumulator_format or self.operand_format.accumulator_format(
            self.operand_format, terms=121
        )
        self.saturating = saturating
        self.pipeline = Pipeline(depth=pipeline_stages, name=f"{name}.pipe")
        self.mac_count = 0

    # ------------------------------------------------------------------ #
    # combinational behaviour
    # ------------------------------------------------------------------ #
    def compute(self, input_raw: int, weight_raw: int, psum_raw: int) -> int:
        """Return ``psum + input * weight`` in the accumulator format.

        ``input_raw`` and ``weight_raw`` are raw integers in the operand
        format; ``psum_raw`` is a raw integer already aligned to the product
        format (operand frac bits doubled) as produced by an upstream MAC.
        """
        self.mac_count += 1
        result = int(psum_raw) + int(input_raw) * int(weight_raw)
        if self.saturating:
            return self.accumulator_format.saturate(result)
        return self.accumulator_format.wrap(result)

    # ------------------------------------------------------------------ #
    # pipelined behaviour
    # ------------------------------------------------------------------ #
    def issue(self, input_raw: int, weight_raw: int, psum_raw: int) -> None:
        """Issue one MAC into the pipeline; the result emerges after the latency."""
        self.pipeline.push(self.compute(input_raw, weight_raw, psum_raw))

    def tick(self) -> Optional[int]:
        """Advance the MAC pipeline one cycle, returning a completed result or None."""
        return self.pipeline.tick()

    def reset(self) -> None:
        """Flush pipeline state (counters are preserved)."""
        self.pipeline.reset()

    @property
    def latency(self) -> int:
        """Cycles from issue to result (0 for a purely combinational MAC)."""
        return self.pipeline.depth
