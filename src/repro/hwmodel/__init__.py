"""Generic hardware-modelling substrate.

This subpackage provides the building blocks the Chain-NN processor core is
assembled from: a 16-bit fixed-point number system, registers and shift
registers, a multiply-accumulate (MAC) datapath, channel multiplexers,
register-file / SRAM storage with access counting, clock domains and a small
cycle-driven simulation engine.

The abstraction level is *register-transfer behaviour*: component state only
changes on :meth:`~repro.hwmodel.simulator.ClockedComponent.tick`, and
combinational outputs are recomputed from the current state, which is exactly
the level the paper's ModelSim functional simulation validates.
"""

from repro.hwmodel.clock import ClockDomain
from repro.hwmodel.fixed_point import FixedPointFormat, quantize_array, quantize_value
from repro.hwmodel.mac import MacUnit
from repro.hwmodel.memory import RegisterFile, Sram
from repro.hwmodel.mux import Mux
from repro.hwmodel.register import Pipeline, Register, ShiftRegister
from repro.hwmodel.simulator import ClockedComponent, CycleSimulator

__all__ = [
    "ClockDomain",
    "ClockedComponent",
    "CycleSimulator",
    "FixedPointFormat",
    "MacUnit",
    "Mux",
    "Pipeline",
    "Register",
    "RegisterFile",
    "ShiftRegister",
    "Sram",
    "quantize_array",
    "quantize_value",
]
