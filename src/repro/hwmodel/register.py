"""Register primitives: single registers, shift registers and pipelines.

These model edge-triggered storage with the usual two-phase discipline used
in cycle simulators: during a cycle the *next* value is staged with
:meth:`Register.set_next`, and all registers latch simultaneously when the
simulator calls :meth:`Register.tick`.  This prevents evaluation-order
artefacts when components are updated sequentially in Python.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional


class Register:
    """A single edge-triggered register with explicit next-state staging."""

    def __init__(self, reset_value: Any = 0, name: str = "reg") -> None:
        self.name = name
        self.reset_value = reset_value
        self._value = reset_value
        self._next = reset_value
        self._next_staged = False
        self.write_count = 0

    @property
    def value(self) -> Any:
        """Current (registered) value visible to downstream logic."""
        return self._value

    def set_next(self, value: Any) -> None:
        """Stage the value that will be latched at the next clock edge."""
        self._next = value
        self._next_staged = True

    def hold(self) -> None:
        """Explicitly keep the current value through the next edge (clock enable low)."""
        self._next = self._value
        self._next_staged = True

    def tick(self) -> None:
        """Latch the staged next value.  Unstaged registers hold their value."""
        if self._next_staged:
            if self._next != self._value:
                self.write_count += 1
            self._value = self._next
        self._next_staged = False

    def reset(self) -> None:
        """Asynchronously reset to the reset value."""
        self._value = self.reset_value
        self._next = self.reset_value
        self._next_staged = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Register({self.name}={self._value!r})"


class ShiftRegister:
    """A fixed-depth shift register (a chain of :class:`Register` stages).

    ``shift_in`` stages a new head value; on :meth:`tick` every stage takes
    the previous stage's value.  The value falling off the end is available
    via :attr:`tail` *before* the tick (i.e. the value that will be shifted
    out) and via the return value of :meth:`tick`.
    """

    def __init__(self, depth: int, reset_value: Any = 0, name: str = "shift") -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.name = name
        self.depth = depth
        self._stages: List[Any] = [reset_value] * depth
        self._reset_value = reset_value
        self._pending: Optional[Any] = None

    @property
    def stages(self) -> List[Any]:
        """Snapshot of the register contents, index 0 = most recent input."""
        return list(self._stages)

    @property
    def head(self) -> Any:
        """Most recently shifted-in value currently stored."""
        return self._stages[0]

    @property
    def tail(self) -> Any:
        """Oldest stored value (next to be shifted out)."""
        return self._stages[-1]

    def shift_in(self, value: Any) -> None:
        """Stage ``value`` as the next input; it enters on the next tick."""
        self._pending = value

    def tick(self) -> Any:
        """Advance one cycle.  Returns the value shifted out of the tail."""
        shifted_out = self._stages[-1]
        incoming = self._pending if self._pending is not None else self._reset_value
        self._stages = [incoming] + self._stages[:-1]
        self._pending = None
        return shifted_out

    def reset(self) -> None:
        """Clear all stages back to the reset value."""
        self._stages = [self._reset_value] * self.depth
        self._pending = None

    def __len__(self) -> int:
        return self.depth

    def __iter__(self) -> Iterable[Any]:
        return iter(self._stages)


class Pipeline:
    """A latency-only pipeline: values emerge ``depth`` ticks after insertion.

    This models the paper's three-stage pipelining of the MAC path — the
    result is unchanged, only delayed.  ``None`` marks bubbles.
    """

    def __init__(self, depth: int, name: str = "pipe") -> None:
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        self.name = name
        self.depth = depth
        self._stages: List[Any] = [None] * depth
        self._pending: Any = None

    def push(self, value: Any) -> None:
        """Insert a value into the first stage (takes effect on tick)."""
        self._pending = value

    def tick(self) -> Any:
        """Advance one cycle and return the value leaving the pipeline.

        With ``depth == 0`` the pipeline is a wire: the pushed value is
        returned immediately.
        """
        if self.depth == 0:
            out, self._pending = self._pending, None
            return out
        out = self._stages[-1]
        self._stages = [self._pending] + self._stages[:-1]
        self._pending = None
        return out

    def reset(self) -> None:
        """Flush all stages."""
        self._stages = [None] * self.depth
        self._pending = None

    @property
    def occupancy(self) -> int:
        """Number of non-bubble entries currently in flight."""
        return sum(1 for stage in self._stages if stage is not None)
