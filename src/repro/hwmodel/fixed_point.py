"""16-bit fixed-point arithmetic used by the Chain-NN datapath.

The paper states every PE performs "a 16-bit fixed-point MAC operation"; the
float-to-fixed conversion of pre-trained networks was done by a custom
simulator integrated with MatConvNet.  This module is that simulator's
substitute: it defines a Q-format (``FixedPointFormat``), converts floating
point tensors into integer raw values, and implements the saturating
arithmetic a hardware MAC would perform.

Values are represented as Python/NumPy integers holding the *raw* two's
complement bit pattern; the format object converts between raw integers and
real values.  Keeping raw integers explicit (instead of storing floats
rounded to a grid) means overflow, saturation and accumulator width behave
exactly as in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format.

    Parameters
    ----------
    total_bits:
        Word length including the sign bit.  Chain-NN uses 16.
    frac_bits:
        Number of fractional bits.  ``Q8.8`` (8 integer, 8 fractional bits)
        is the library default for weights and activations.
    """

    total_bits: int = 16
    frac_bits: int = 8

    def __post_init__(self) -> None:
        if self.total_bits <= 1:
            raise QuantizationError(f"total_bits must be > 1, got {self.total_bits}")
        if not (0 <= self.frac_bits < self.total_bits):
            raise QuantizationError(
                f"frac_bits must be in [0, {self.total_bits - 1}], got {self.frac_bits}"
            )

    # ------------------------------------------------------------------ #
    # derived properties
    # ------------------------------------------------------------------ #
    @property
    def int_bits(self) -> int:
        """Integer bits excluding the sign bit."""
        return self.total_bits - self.frac_bits - 1

    @property
    def scale(self) -> float:
        """Real value of one least-significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer (two's complement)."""
        return -(1 << (self.total_bits - 1))

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer (two's complement)."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min * self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max * self.scale

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_raw(self, value: float) -> int:
        """Quantise a real value to a saturated raw integer."""
        raw = int(np.round(value / self.scale))
        return max(self.raw_min, min(self.raw_max, raw))

    def to_real(self, raw: int) -> float:
        """Convert a raw integer back to its real value."""
        return raw * self.scale

    def saturate(self, raw: int) -> int:
        """Clamp an out-of-range raw integer into the representable range."""
        return max(self.raw_min, min(self.raw_max, int(raw)))

    def wrap(self, raw: int) -> int:
        """Wrap an integer modulo 2**total_bits into two's complement range.

        Hardware adders without saturation logic exhibit this behaviour; the
        library default is saturation but the wrap mode is exposed so the
        effect of dropping the saturation logic can be studied.
        """
        modulus = 1 << self.total_bits
        raw = int(raw) % modulus
        if raw >= modulus // 2:
            raw -= modulus
        return raw

    # ------------------------------------------------------------------ #
    # array helpers
    # ------------------------------------------------------------------ #
    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantise an array of reals onto the representable grid (as reals)."""
        raw = self.quantize_raw(values)
        return raw.astype(np.float64) * self.scale

    def quantize_raw(self, values: np.ndarray) -> np.ndarray:
        """Quantise an array of reals to saturated raw integers (int64)."""
        arr = np.asarray(values, dtype=np.float64)
        raw = np.round(arr / self.scale)
        raw = np.clip(raw, self.raw_min, self.raw_max)
        return raw.astype(np.int64)

    def dequantize_raw(self, raw: np.ndarray) -> np.ndarray:
        """Convert an array of raw integers back to real values."""
        return np.asarray(raw, dtype=np.float64) * self.scale

    def quantization_error(self, values: np.ndarray) -> dict:
        """Return error statistics (max abs, mean abs, rmse) of quantising ``values``."""
        arr = np.asarray(values, dtype=np.float64)
        quant = self.quantize(arr)
        err = arr - quant
        return {
            "max_abs": float(np.max(np.abs(err))) if err.size else 0.0,
            "mean_abs": float(np.mean(np.abs(err))) if err.size else 0.0,
            "rmse": float(np.sqrt(np.mean(err**2))) if err.size else 0.0,
        }

    def product_format(self, other: "FixedPointFormat") -> "FixedPointFormat":
        """Format of the full-precision product of two fixed-point values."""
        return FixedPointFormat(
            total_bits=self.total_bits + other.total_bits,
            frac_bits=self.frac_bits + other.frac_bits,
        )

    def accumulator_format(self, other: "FixedPointFormat", terms: int) -> "FixedPointFormat":
        """Format wide enough to accumulate ``terms`` products without overflow.

        The growth is ``ceil(log2(terms))`` guard bits on top of the product
        width — the standard rule used when sizing systolic-array
        accumulators.
        """
        if terms <= 0:
            raise QuantizationError(f"terms must be positive, got {terms}")
        product = self.product_format(other)
        guard = max(1, int(np.ceil(np.log2(terms))) if terms > 1 else 1)
        return FixedPointFormat(
            total_bits=product.total_bits + guard,
            frac_bits=product.frac_bits,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.int_bits}.{self.frac_bits} ({self.total_bits}b)"


#: library default: 16-bit, 8 fractional bits
DEFAULT_FORMAT = FixedPointFormat(total_bits=16, frac_bits=8)


def quantize_value(value: float, fmt: FixedPointFormat = DEFAULT_FORMAT) -> float:
    """Quantise a scalar to ``fmt`` and return the nearest representable real."""
    return fmt.to_real(fmt.to_raw(value))


def quantize_array(values: np.ndarray, fmt: FixedPointFormat = DEFAULT_FORMAT) -> np.ndarray:
    """Quantise an array to ``fmt`` and return the representable reals."""
    return fmt.quantize(values)


def fixed_point_mac(
    acc_raw: int,
    a_raw: int,
    b_raw: int,
    acc_fmt: FixedPointFormat,
    saturating: bool = True,
) -> int:
    """One multiply-accumulate step on raw integers.

    The product ``a_raw * b_raw`` is in the product format (sum of the
    operand fractional bits); the caller is responsible for ensuring
    ``acc_fmt`` uses the same fractional alignment.  Returns the new raw
    accumulator value, saturated (default) or wrapped to ``acc_fmt``.
    """
    result = int(acc_raw) + int(a_raw) * int(b_raw)
    if saturating:
        return acc_fmt.saturate(result)
    return acc_fmt.wrap(result)
