"""Storage models: per-PE register files (kMemory) and SRAM banks.

Both models track read/write access counts and bytes moved; the energy model
multiplies these counters by per-access energies.  Capacities are enforced so
that configuration mistakes (e.g. more kernel weights than the 256-entry
kMemory can hold) raise :class:`repro.errors.CapacityError` instead of
silently producing optimistic results.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import CapacityError


class AccessCounters:
    """Read/write counters shared by the storage models."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def record_read(self, num_bytes: int, count: int = 1) -> None:
        """Record ``count`` read accesses totalling ``num_bytes`` bytes."""
        self.reads += count
        self.bytes_read += num_bytes

    def record_write(self, num_bytes: int, count: int = 1) -> None:
        """Record ``count`` write accesses totalling ``num_bytes`` bytes."""
        self.writes += count
        self.bytes_written += num_bytes

    @property
    def total_accesses(self) -> int:
        """Total number of read + write accesses."""
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in either direction."""
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0


class RegisterFile:
    """A small word-addressed register file — the per-PE ``kMemory``.

    The paper distributes 295 KB of kernel storage over 576 PEs, i.e. 256
    16-bit entries per PE.  Entries are raw fixed-point integers.
    """

    def __init__(self, depth: int = 256, word_bytes: int = 2, name: str = "kMemory") -> None:
        if depth <= 0:
            raise CapacityError(f"{name}: depth must be positive, got {depth}")
        if word_bytes <= 0:
            raise CapacityError(f"{name}: word_bytes must be positive, got {word_bytes}")
        self.name = name
        self.depth = depth
        self.word_bytes = word_bytes
        self._data: List[int] = [0] * depth
        self.counters = AccessCounters()

    @property
    def capacity_bytes(self) -> int:
        """Total storage capacity in bytes."""
        return self.depth * self.word_bytes

    def write(self, address: int, value: int) -> None:
        """Write one word."""
        self._check_address(address)
        self._data[address] = int(value)
        self.counters.record_write(self.word_bytes)

    def read(self, address: int) -> int:
        """Read one word."""
        self._check_address(address)
        self.counters.record_read(self.word_bytes)
        return self._data[address]

    def load(self, values: List[int], base: int = 0) -> None:
        """Bulk-load ``values`` starting at ``base`` (counts one write per word)."""
        if base < 0 or base + len(values) > self.depth:
            raise CapacityError(
                f"{self.name}: cannot load {len(values)} words at {base} "
                f"(depth {self.depth})"
            )
        for offset, value in enumerate(values):
            self.write(base + offset, value)

    def peek(self, address: int) -> int:
        """Read a word without counting an access (for testing/debug)."""
        self._check_address(address)
        return self._data[address]

    def reset(self) -> None:
        """Clear contents and counters."""
        self._data = [0] * self.depth
        self.counters.reset()

    def _check_address(self, address: int) -> None:
        if not (0 <= address < self.depth):
            raise CapacityError(
                f"{self.name}: address {address} out of range 0..{self.depth - 1}"
            )


class Sram:
    """A byte-capacity SRAM bank with word-granular access counting.

    Used for ``iMemory`` (32 KB) and ``oMemory`` (25 KB).  The functional
    contents are optional: pure performance/energy studies only need the
    counters, while the cycle-level simulator stores actual words.
    """

    def __init__(
        self,
        capacity_bytes: int,
        word_bytes: int = 2,
        name: str = "sram",
        store_contents: bool = False,
    ) -> None:
        if capacity_bytes <= 0:
            raise CapacityError(f"{name}: capacity must be positive, got {capacity_bytes}")
        if word_bytes <= 0:
            raise CapacityError(f"{name}: word_bytes must be positive, got {word_bytes}")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.word_bytes = word_bytes
        self.counters = AccessCounters()
        self._contents: Optional[Dict[int, int]] = {} if store_contents else None

    @property
    def depth(self) -> int:
        """Number of addressable words."""
        return self.capacity_bytes // self.word_bytes

    def read(self, address: int, words: int = 1) -> List[int]:
        """Read ``words`` consecutive words starting at ``address``."""
        self._check_range(address, words)
        self.counters.record_read(words * self.word_bytes, count=words)
        if self._contents is None:
            return [0] * words
        return [self._contents.get(address + i, 0) for i in range(words)]

    def write(self, address: int, values: List[int]) -> None:
        """Write consecutive words starting at ``address``."""
        self._check_range(address, len(values))
        self.counters.record_write(len(values) * self.word_bytes, count=len(values))
        if self._contents is not None:
            for i, value in enumerate(values):
                self._contents[address + i] = int(value)

    def record_stream_read(self, num_words: int) -> None:
        """Account for a streaming read of ``num_words`` words without addressing.

        The analytical traffic model knows how many words move but not their
        addresses; this keeps one code path for both analytical and
        cycle-level use.
        """
        if num_words < 0:
            raise ValueError(f"num_words must be >= 0, got {num_words}")
        self.counters.record_read(num_words * self.word_bytes, count=num_words)

    def record_stream_write(self, num_words: int) -> None:
        """Account for a streaming write of ``num_words`` words without addressing."""
        if num_words < 0:
            raise ValueError(f"num_words must be >= 0, got {num_words}")
        self.counters.record_write(num_words * self.word_bytes, count=num_words)

    def utilization_of(self, working_set_bytes: int) -> float:
        """Fraction of the capacity a working set occupies (may exceed 1.0)."""
        return working_set_bytes / self.capacity_bytes

    def fits(self, working_set_bytes: int) -> bool:
        """True when a working set fits entirely in this SRAM."""
        return working_set_bytes <= self.capacity_bytes

    def reset(self) -> None:
        """Clear counters (and contents when stored)."""
        self.counters.reset()
        if self._contents is not None:
            self._contents = {}

    def _check_range(self, address: int, words: int) -> None:
        if address < 0 or words < 0 or (address + words) > self.depth:
            raise CapacityError(
                f"{self.name}: access [{address}, {address + words}) exceeds depth {self.depth}"
            )


def numpy_bytes(array: np.ndarray, word_bytes: int = 2) -> int:
    """Size in bytes of ``array`` when stored as ``word_bytes``-wide words."""
    return int(array.size) * word_bytes
