"""A minimal cycle-driven simulation engine.

Components implementing :class:`ClockedComponent` are registered with a
:class:`CycleSimulator`; each simulated cycle the engine calls every
component's :meth:`ClockedComponent.tick` once, in registration order, after
which the cycle counter advances.  Components must follow the staged-update
discipline of :mod:`repro.hwmodel.register` so that ordering does not affect
results.

The Chain-NN cycle simulator in :mod:`repro.sim.cycle` builds on this engine;
it is also usable standalone for unit-testing individual components.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional

from repro.errors import SimulationError


class ClockedComponent(abc.ABC):
    """Interface for anything advanced by the simulation clock."""

    @abc.abstractmethod
    def tick(self) -> None:
        """Advance internal state by one clock cycle."""

    def reset(self) -> None:  # pragma: no cover - default is a no-op
        """Return the component to its power-on state."""


class CycleSimulator:
    """Drives a set of clocked components cycle by cycle."""

    def __init__(self, name: str = "sim", max_cycles: int = 100_000_000) -> None:
        self.name = name
        self.max_cycles = max_cycles
        self.cycle = 0
        self._components: List[ClockedComponent] = []
        self._watchers: List[Callable[[int], None]] = []

    def add(self, component: ClockedComponent) -> ClockedComponent:
        """Register a component; returns it for chaining."""
        self._components.append(component)
        return component

    def add_watcher(self, callback: Callable[[int], None]) -> None:
        """Register a callback invoked with the cycle number after every tick."""
        self._watchers.append(callback)

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` clock cycles."""
        if cycles < 0:
            raise SimulationError(f"cannot step a negative number of cycles ({cycles})")
        for _ in range(cycles):
            if self.cycle >= self.max_cycles:
                raise SimulationError(
                    f"{self.name}: exceeded max_cycles={self.max_cycles}; "
                    "likely a stalled run condition"
                )
            for component in self._components:
                component.tick()
            self.cycle += 1
            for watcher in self._watchers:
                watcher(self.cycle)

    def run_until(self, predicate: Callable[[], bool], max_cycles: Optional[int] = None) -> int:
        """Step until ``predicate()`` is true; returns the number of cycles run."""
        budget = max_cycles if max_cycles is not None else self.max_cycles
        start = self.cycle
        while not predicate():
            if self.cycle - start >= budget:
                raise SimulationError(
                    f"{self.name}: predicate not satisfied within {budget} cycles"
                )
            self.step()
        return self.cycle - start

    def reset(self) -> None:
        """Reset the cycle counter and every registered component."""
        self.cycle = 0
        for component in self._components:
            component.reset()
