"""Multiplexer model with selection counting.

The dual-channel PE uses one mux to pick between the OddIF and EvenIF ifmap
channels and further muxes to implement the primitive input/output ports
(grey blocks in Fig. 6 of the paper).  The model is combinational; the
counters feed the activity-based power model.
"""

from __future__ import annotations

from typing import Any, Sequence


class Mux:
    """An N-way combinational multiplexer."""

    def __init__(self, num_inputs: int = 2, name: str = "mux") -> None:
        if num_inputs < 2:
            raise ValueError(f"a mux needs at least 2 inputs, got {num_inputs}")
        self.name = name
        self.num_inputs = num_inputs
        self.select_count = 0
        self.toggle_count = 0
        self._last_select: int | None = None

    def select(self, inputs: Sequence[Any], sel: int) -> Any:
        """Return ``inputs[sel]`` and update the activity counters."""
        if len(inputs) != self.num_inputs:
            raise ValueError(
                f"{self.name}: expected {self.num_inputs} inputs, got {len(inputs)}"
            )
        if not (0 <= sel < self.num_inputs):
            raise ValueError(f"{self.name}: select {sel} out of range 0..{self.num_inputs - 1}")
        self.select_count += 1
        if self._last_select is not None and self._last_select != sel:
            self.toggle_count += 1
        self._last_select = sel
        return inputs[sel]

    def reset(self) -> None:
        """Clear activity counters."""
        self.select_count = 0
        self.toggle_count = 0
        self._last_select = None
