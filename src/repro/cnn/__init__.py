"""CNN workload substrate: layer specs, network zoo, references, quantisation."""

from repro.cnn.generator import TensorStats, WorkloadGenerator
from repro.cnn.layer import ConvLayer, FullyConnectedLayer, PoolingLayer
from repro.cnn.network import Network, validate_chaining
from repro.cnn.quantize import (
    QuantizationResult,
    bit_width_sweep,
    choose_format,
    evaluate_layer_quantization,
    quantize_layer_tensors,
)
from repro.cnn.reference import (
    conv2d_direct,
    conv2d_im2col,
    conv2d_single_channel,
    pad_input,
    strided_windows,
)
from repro.cnn.tensor import FeatureMap
from repro.cnn.zoo import (
    NETWORKS,
    alexnet,
    cifar10_quick,
    get_network,
    lenet5,
    tiny_test_network,
    vgg16,
)

__all__ = [
    "ConvLayer",
    "FullyConnectedLayer",
    "PoolingLayer",
    "Network",
    "validate_chaining",
    "FeatureMap",
    "WorkloadGenerator",
    "TensorStats",
    "QuantizationResult",
    "bit_width_sweep",
    "choose_format",
    "evaluate_layer_quantization",
    "quantize_layer_tensors",
    "conv2d_direct",
    "conv2d_im2col",
    "conv2d_single_channel",
    "pad_input",
    "strided_windows",
    "NETWORKS",
    "alexnet",
    "vgg16",
    "lenet5",
    "cifar10_quick",
    "tiny_test_network",
    "get_network",
]
