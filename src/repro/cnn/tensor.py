"""Feature-map container helpers (CHW layout) and layout conversions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import WorkloadError


@dataclass
class FeatureMap:
    """A named CHW tensor with convenience accessors.

    The accelerator models mostly index single channels (a systolic primitive
    works on one 2D plane at a time), so the container exposes per-channel
    iteration and basic layout transforms.
    """

    name: str
    data: np.ndarray

    def __post_init__(self) -> None:
        array = np.asarray(self.data, dtype=np.float64)
        if array.ndim != 3:
            raise WorkloadError(
                f"{self.name}: feature maps must be 3D (C, H, W), got shape {array.shape}"
            )
        self.data = array

    @property
    def channels(self) -> int:
        """Number of channels ``C``."""
        return self.data.shape[0]

    @property
    def height(self) -> int:
        """Spatial height ``H``."""
        return self.data.shape[1]

    @property
    def width(self) -> int:
        """Spatial width ``W``."""
        return self.data.shape[2]

    @property
    def shape(self) -> Tuple[int, int, int]:
        """The (C, H, W) shape tuple."""
        return tuple(self.data.shape)  # type: ignore[return-value]

    def channel(self, index: int) -> np.ndarray:
        """Return one 2D channel plane."""
        if not (0 <= index < self.channels):
            raise WorkloadError(f"{self.name}: channel {index} out of range 0..{self.channels - 1}")
        return self.data[index]

    def iter_channels(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Iterate ``(channel_index, plane)`` pairs."""
        for index in range(self.channels):
            yield index, self.data[index]

    def padded(self, padding: int) -> "FeatureMap":
        """Return a zero-padded copy."""
        if padding < 0:
            raise WorkloadError("padding must be >= 0")
        if padding == 0:
            return FeatureMap(self.name, self.data.copy())
        padded = np.pad(self.data, ((0, 0), (padding, padding), (padding, padding)))
        return FeatureMap(f"{self.name}+pad{padding}", padded)

    def to_hwc(self) -> np.ndarray:
        """Return the data transposed to HWC layout."""
        return np.transpose(self.data, (1, 2, 0))

    @classmethod
    def from_hwc(cls, name: str, data: np.ndarray) -> "FeatureMap":
        """Construct from an HWC tensor."""
        array = np.asarray(data, dtype=np.float64)
        if array.ndim != 3:
            raise WorkloadError(f"{name}: HWC data must be 3D, got shape {array.shape}")
        return cls(name, np.transpose(array, (2, 0, 1)))

    def bytes(self, word_bytes: int = 2) -> int:
        """Storage footprint at the given word size."""
        return int(self.data.size) * word_bytes
