"""Synthetic tensor generators.

The paper draws its test vectors from pre-trained MatConvNet models.  Trained
weights are not available offline, and the accelerator's behaviour does not
depend on their values, so this module synthesises weight and feature-map
tensors with realistic statistics:

* Gaussian weights with a fan-in-scaled standard deviation (Glorot-style),
  which keeps the fixed-point dynamic range representative of real networks.
* Post-ReLU activations: half-normal with a configurable sparsity (fraction
  of exact zeros), matching the zero-heavy ifmaps real CNN layers see.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.cnn.layer import ConvLayer
from repro.errors import WorkloadError


def stable_seed(*parts) -> int:
    """Platform-stable derived seed from arbitrary labelled parts.

    Hashes the string forms of ``parts`` (SHA-256, first 8 bytes), so
    ``stable_seed(2017, "anneal", "conv3")`` is the same integer on every
    platform and Python version — unlike ``hash()``, whose salting would make
    searches and generated tensors irreproducible across CI runs.  Used to
    fan one user-facing seed out into independent, reproducible RNG streams
    (per layer, per strategy, per worker).
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class TensorStats:
    """Summary statistics of a generated tensor (used in tests and reports)."""

    mean: float
    std: float
    min: float
    max: float
    zero_fraction: float

    @classmethod
    def of(cls, array: np.ndarray) -> "TensorStats":
        """Compute the statistics of ``array``."""
        arr = np.asarray(array, dtype=np.float64)
        if arr.size == 0:
            raise WorkloadError("cannot summarise an empty tensor")
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std()),
            min=float(arr.min()),
            max=float(arr.max()),
            zero_fraction=float(np.mean(arr == 0.0)),
        )


class WorkloadGenerator:
    """Deterministic (seeded) generator of synthetic CNN tensors."""

    def __init__(self, seed: int = 2017) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # weights
    # ------------------------------------------------------------------ #
    def weights(self, layer: ConvLayer, scale: Optional[float] = None) -> np.ndarray:
        """Gaussian kernels of shape ``(M, C/groups, K, K)``.

        ``scale`` defaults to ``sqrt(2 / fan_in)`` (He initialisation), which
        keeps activations in a realistic numeric range through the network.
        """
        fan_in = layer.in_channels_per_group * layer.kernel_size * layer.kernel_size
        std = scale if scale is not None else float(np.sqrt(2.0 / fan_in))
        shape = (
            layer.out_channels,
            layer.in_channels_per_group,
            layer.kernel_size,
            layer.kernel_size,
        )
        return self._rng.normal(0.0, std, size=shape)

    def bias(self, layer: ConvLayer, scale: float = 0.01) -> np.ndarray:
        """Small Gaussian bias vector of shape ``(M,)``."""
        return self._rng.normal(0.0, scale, size=(layer.out_channels,))

    # ------------------------------------------------------------------ #
    # feature maps
    # ------------------------------------------------------------------ #
    def ifmaps(self, layer: ConvLayer, sparsity: float = 0.0,
               amplitude: float = 1.0) -> np.ndarray:
        """Post-ReLU-like ifmaps of shape ``(C, H, W)``.

        ``sparsity`` is the fraction of elements forced to exactly zero
        (ReLU zeros); the non-zero values are half-normal with the given
        amplitude.
        """
        if not (0.0 <= sparsity <= 1.0):
            raise WorkloadError(f"sparsity must be in [0, 1], got {sparsity}")
        shape = (layer.in_channels, layer.in_height, layer.in_width)
        values = np.abs(self._rng.normal(0.0, amplitude, size=shape))
        if sparsity > 0.0:
            mask = self._rng.random(shape) < sparsity
            values = np.where(mask, 0.0, values)
        return values

    def image(self, channels: int = 3, height: int = 227, width: int = 227) -> np.ndarray:
        """A synthetic natural-image-like input in [0, 1] (smooth random field)."""
        base = self._rng.random((channels, height // 8 + 1, width // 8 + 1))
        # bilinear-ish upsampling by repetition then box blur keeps it smooth
        upsampled = np.repeat(np.repeat(base, 8, axis=1), 8, axis=2)[:, :height, :width]
        kernel = np.ones((3, 3)) / 9.0
        smoothed = np.empty_like(upsampled)
        padded = np.pad(upsampled, ((0, 0), (1, 1), (1, 1)), mode="edge")
        for channel in range(channels):
            for row in range(height):
                smoothed[channel, row] = np.array([
                    float(np.sum(padded[channel, row:row + 3, col:col + 3] * kernel))
                    for col in range(width)
                ])
        return smoothed

    def layer_pair(self, layer: ConvLayer, sparsity: float = 0.0
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Convenience: (ifmaps, weights) for a layer."""
        return self.ifmaps(layer, sparsity=sparsity), self.weights(layer)

    def reseed(self, seed: int) -> None:
        """Reset the underlying RNG (makes long test campaigns reproducible)."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def spawn(self, *parts) -> "WorkloadGenerator":
        """An independent generator whose seed derives from this one.

        ``generator.spawn(layer.name)`` gives every layer (or worker) its own
        reproducible stream regardless of how many tensors were drawn from
        the parent — the per-layer verification of searched mappings relies
        on this to generate identical tensors in any order.
        """
        return WorkloadGenerator(seed=stable_seed(self.seed, *parts))
