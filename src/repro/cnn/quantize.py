"""Float-to-fixed-point conversion of CNN tensors.

This is the reproduction of the paper's "float-point-to-fix-point simulator
... integrated with MatConvnet": given floating-point weights and feature
maps it selects a Q-format, converts the tensors, runs the quantised
convolution and reports the accuracy loss relative to the float reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.cnn.layer import ConvLayer
from repro.cnn.reference import conv2d_direct
from repro.errors import QuantizationError
from repro.hwmodel.fixed_point import FixedPointFormat


@dataclass(frozen=True)
class QuantizationResult:
    """Outcome of quantising and re-running one layer."""

    layer_name: str
    ifmap_format: FixedPointFormat
    weight_format: FixedPointFormat
    max_abs_error: float
    mean_abs_error: float
    rmse: float
    reference_rms: float

    @property
    def relative_rmse(self) -> float:
        """RMSE normalised by the reference output RMS (signal-to-error measure)."""
        if self.reference_rms == 0.0:
            return 0.0
        return self.rmse / self.reference_rms

    @property
    def sqnr_db(self) -> float:
        """Signal-to-quantisation-noise ratio in dB."""
        if self.rmse == 0.0:
            return float("inf")
        if self.reference_rms == 0.0:
            return float("-inf")
        return 20.0 * float(np.log10(self.reference_rms / self.rmse))


def choose_format(values: np.ndarray, total_bits: int = 16) -> FixedPointFormat:
    """Pick the Q-format with the most fractional bits that avoids saturation.

    The integer bit count is chosen from the largest magnitude present in
    ``values`` (plus the sign bit); everything left over becomes fraction.
    This mirrors the per-tensor static quantisation used by early fixed-point
    CNN accelerators.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise QuantizationError("cannot choose a format for an empty tensor")
    max_abs = float(np.max(np.abs(arr)))
    if max_abs == 0.0:
        int_bits = 0
    else:
        int_bits = max(0, int(np.ceil(np.log2(max_abs + 1e-12))) + 1)
    frac_bits = total_bits - 1 - int_bits
    if frac_bits < 0:
        raise QuantizationError(
            f"values with max |x|={max_abs:.3g} cannot be represented in {total_bits} bits"
        )
    return FixedPointFormat(total_bits=total_bits, frac_bits=frac_bits)


def quantize_layer_tensors(
    ifmaps: np.ndarray,
    weights: np.ndarray,
    total_bits: int = 16,
) -> Tuple[np.ndarray, np.ndarray, FixedPointFormat, FixedPointFormat]:
    """Quantise (ifmaps, weights) with per-tensor formats; returns grids + formats."""
    ifmap_fmt = choose_format(ifmaps, total_bits)
    weight_fmt = choose_format(weights, total_bits)
    return (
        ifmap_fmt.quantize(ifmaps),
        weight_fmt.quantize(weights),
        ifmap_fmt,
        weight_fmt,
    )


def evaluate_layer_quantization(
    layer: ConvLayer,
    ifmaps: np.ndarray,
    weights: np.ndarray,
    total_bits: int = 16,
) -> QuantizationResult:
    """Quantise one layer's operands, re-run the convolution and report error."""
    reference = conv2d_direct(layer, ifmaps, weights)
    q_ifmaps, q_weights, ifmap_fmt, weight_fmt = quantize_layer_tensors(
        ifmaps, weights, total_bits
    )
    quantised = conv2d_direct(layer, q_ifmaps, q_weights)
    error = reference - quantised
    return QuantizationResult(
        layer_name=layer.name,
        ifmap_format=ifmap_fmt,
        weight_format=weight_fmt,
        max_abs_error=float(np.max(np.abs(error))) if error.size else 0.0,
        mean_abs_error=float(np.mean(np.abs(error))) if error.size else 0.0,
        rmse=float(np.sqrt(np.mean(error**2))) if error.size else 0.0,
        reference_rms=float(np.sqrt(np.mean(reference**2))) if reference.size else 0.0,
    )


def bit_width_sweep(
    layer: ConvLayer,
    ifmaps: np.ndarray,
    weights: np.ndarray,
    bit_widths: Tuple[int, ...] = (8, 10, 12, 16, 20),
) -> Dict[int, QuantizationResult]:
    """Evaluate quantisation error across several word lengths.

    Used by the fixed-point-accuracy example to show why the paper's 16-bit
    choice is sufficient for inference.
    """
    results: Dict[int, QuantizationResult] = {}
    for bits in bit_widths:
        results[bits] = evaluate_layer_quantization(layer, ifmaps, weights, total_bits=bits)
    return results
