"""Golden-model convolution in NumPy.

The paper checks RTL outputs on-the-fly against a software simulator; this
module plays that role.  Two implementations are provided — a straightforward
direct convolution and an im2col/GEMM formulation — so the reference itself
can be cross-checked.  Both operate on single images in CHW layout and
support stride, zero padding and channel groups.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.cnn.layer import ConvLayer
from repro.errors import WorkloadError


def pad_input(ifmaps: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad a CHW tensor on both spatial borders."""
    if padding == 0:
        return ifmaps
    return np.pad(ifmaps, ((0, 0), (padding, padding), (padding, padding)), mode="constant")


def strided_windows(array: np.ndarray, kernel_size: int, stride: int,
                    out_height: int, out_width: int) -> np.ndarray:
    """Zero-copy ``(..., out_h, out_w, K, K)`` view of the stride-grid windows.

    ``array``'s last two axes are the (padded) spatial dimensions; grid
    position ``(r, c)`` holds the window whose top-left pixel is
    ``(r * stride, c * stride)``.  This is the window selection every
    consumer shares — im2col, the single-channel reference, the vectorized
    functional backend and pooling.
    """
    windows = sliding_window_view(array, (kernel_size, kernel_size), axis=(-2, -1))
    windows = windows[..., ::stride, ::stride, :, :]
    return windows[..., :out_height, :out_width, :, :]


def _check_shapes(layer: ConvLayer, ifmaps: np.ndarray, weights: np.ndarray) -> None:
    expected_in = (layer.in_channels, layer.in_height, layer.in_width)
    if ifmaps.shape != expected_in:
        raise WorkloadError(
            f"{layer.name}: ifmaps shape {ifmaps.shape} does not match layer {expected_in}"
        )
    expected_w = (
        layer.out_channels,
        layer.in_channels_per_group,
        layer.kernel_size,
        layer.kernel_size,
    )
    if weights.shape != expected_w:
        raise WorkloadError(
            f"{layer.name}: weight shape {weights.shape} does not match layer {expected_w}"
        )


def conv2d_direct(layer: ConvLayer, ifmaps: np.ndarray, weights: np.ndarray,
                  bias: np.ndarray | None = None) -> np.ndarray:
    """Direct (loop-based, vectorised over channels) 2D convolution.

    Parameters
    ----------
    layer:
        Geometry description.
    ifmaps:
        ``(C, H, W)`` input tensor.
    weights:
        ``(M, C/groups, K, K)`` kernel tensor.
    bias:
        Optional ``(M,)`` bias vector.

    Returns
    -------
    ``(M, E, E_w)`` output tensor (float64).
    """
    _check_shapes(layer, ifmaps, weights)
    padded = pad_input(np.asarray(ifmaps, dtype=np.float64), layer.padding)
    kernel = layer.kernel_size
    stride = layer.stride
    out = np.zeros((layer.out_channels, layer.out_height, layer.out_width), dtype=np.float64)

    in_per_group = layer.in_channels_per_group
    out_per_group = layer.out_channels_per_group
    for group in range(layer.groups):
        in_lo = group * in_per_group
        out_lo = group * out_per_group
        group_input = padded[in_lo:in_lo + in_per_group]
        group_weights = weights[out_lo:out_lo + out_per_group]
        for row in range(layer.out_height):
            for col in range(layer.out_width):
                window = group_input[
                    :,
                    row * stride:row * stride + kernel,
                    col * stride:col * stride + kernel,
                ]
                # (out_per_group,) = sum over (C/g, K, K)
                out[out_lo:out_lo + out_per_group, row, col] = np.tensordot(
                    group_weights, window, axes=([1, 2, 3], [0, 1, 2])
                )
    if bias is not None:
        out += np.asarray(bias, dtype=np.float64)[:, None, None]
    return out


def im2col(layer: ConvLayer, padded: np.ndarray, group: int) -> np.ndarray:
    """Lower one group's padded input to an im2col matrix.

    Returns a matrix of shape ``(C/g * K * K, E * E_w)`` whose columns are the
    flattened convolution windows in row-major output order.
    """
    kernel = layer.kernel_size
    stride = layer.stride
    in_per_group = layer.in_channels_per_group
    in_lo = group * in_per_group
    padded = np.asarray(padded, dtype=np.float64)
    # (C/g, E, E_w, K, K) zero-copy window view on the output stride grid
    windows = strided_windows(padded[in_lo:in_lo + in_per_group], kernel, stride,
                              layer.out_height, layer.out_width)
    # rows in (channel, i, j) order, columns in row-major output order
    return windows.transpose(0, 3, 4, 1, 2).reshape(
        in_per_group * kernel * kernel, layer.out_height * layer.out_width
    )


def conv2d_im2col(layer: ConvLayer, ifmaps: np.ndarray, weights: np.ndarray,
                  bias: np.ndarray | None = None) -> np.ndarray:
    """im2col + matrix-multiply formulation of the same convolution."""
    _check_shapes(layer, ifmaps, weights)
    padded = pad_input(np.asarray(ifmaps, dtype=np.float64), layer.padding)
    out = np.zeros((layer.out_channels, layer.out_height, layer.out_width), dtype=np.float64)
    out_per_group = layer.out_channels_per_group
    for group in range(layer.groups):
        out_lo = group * out_per_group
        patches = im2col(layer, padded, group)
        kernel_matrix = weights[out_lo:out_lo + out_per_group].reshape(out_per_group, -1)
        result = kernel_matrix @ patches
        out[out_lo:out_lo + out_per_group] = result.reshape(
            out_per_group, layer.out_height, layer.out_width
        )
    if bias is not None:
        out += np.asarray(bias, dtype=np.float64)[:, None, None]
    return out


def conv2d_single_channel(ifmap: np.ndarray, kernel: np.ndarray, stride: int = 1,
                          padding: int = 0) -> np.ndarray:
    """Single-channel 2D convolution used to validate one systolic primitive.

    ``ifmap`` is ``(H, W)``; ``kernel`` is ``(K, K)``.  This is the exact
    operation one 1D systolic primitive computes per (ofmap channel, ifmap
    channel) pair before cross-channel accumulation.
    """
    ifmap = np.asarray(ifmap, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
        raise WorkloadError(f"kernel must be square 2D, got shape {kernel.shape}")
    if padding:
        ifmap = np.pad(ifmap, ((padding, padding), (padding, padding)), mode="constant")
    size = kernel.shape[0]
    out_h = (ifmap.shape[0] - size) // stride + 1
    out_w = (ifmap.shape[1] - size) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise WorkloadError("kernel larger than (padded) input")
    product = strided_windows(ifmap, size, stride, out_h, out_w) * kernel
    # merging the kernel axes keeps NumPy's pairwise reduction order identical
    # to the per-window np.sum of the original loop (bit-identical outputs)
    return np.sum(product.reshape(out_h, out_w, size * size), axis=-1)
