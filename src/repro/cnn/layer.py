"""Convolutional-layer specification and shape/complexity arithmetic.

The accelerator models consume layers described by the Table I parameters of
the paper: batch ``N``, ifmap channels ``C``, ofmap channels ``M``, ifmap
size ``H``, kernel size ``K`` — extended with stride, padding and channel
groups, which AlexNet needs (conv1 has stride 4; conv2/4/5 use two groups).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ConvLayer:
    """One convolutional layer.

    Attributes
    ----------
    name:
        Human-readable identifier (``"conv1"`` ...).
    in_channels:
        ``C`` — number of ifmap channels (per group when ``groups > 1`` the
        value still refers to the *total* ifmap channels).
    out_channels:
        ``M`` — number of ofmap channels (total across groups).
    in_height / in_width:
        ``H`` — spatial size of the ifmaps (before padding).
    kernel_size:
        ``K`` — convolution kernels are ``K x K``.
    stride:
        Convolution stride (same horizontally and vertically).
    padding:
        Zero padding added on every border.
    groups:
        Channel groups (AlexNet's historical two-GPU split).
    """

    name: str
    in_channels: int
    out_channels: int
    in_height: int
    in_width: int
    kernel_size: int
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        for attr in ("in_channels", "out_channels", "in_height", "in_width", "kernel_size",
                     "stride", "groups"):
            value = getattr(self, attr)
            if not isinstance(value, int) or value <= 0:
                raise WorkloadError(f"{self.name}: {attr} must be a positive int, got {value!r}")
        if not isinstance(self.padding, int) or self.padding < 0:
            raise WorkloadError(f"{self.name}: padding must be a non-negative int")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise WorkloadError(
                f"{self.name}: groups={self.groups} must divide both in_channels="
                f"{self.in_channels} and out_channels={self.out_channels}"
            )
        if self.kernel_size > self.padded_height or self.kernel_size > self.padded_width:
            raise WorkloadError(
                f"{self.name}: kernel {self.kernel_size} larger than padded input "
                f"{self.padded_height}x{self.padded_width}"
            )

    # ------------------------------------------------------------------ #
    # derived geometry
    # ------------------------------------------------------------------ #
    @property
    def padded_height(self) -> int:
        """Input height after padding."""
        return self.in_height + 2 * self.padding

    @property
    def padded_width(self) -> int:
        """Input width after padding."""
        return self.in_width + 2 * self.padding

    @property
    def out_height(self) -> int:
        """``E`` — output feature-map height."""
        return (self.padded_height - self.kernel_size) // self.stride + 1

    @property
    def out_width(self) -> int:
        """Output feature-map width."""
        return (self.padded_width - self.kernel_size) // self.stride + 1

    @property
    def out_shape(self) -> Tuple[int, int, int]:
        """Output shape as ``(M, E, E_w)``."""
        return (self.out_channels, self.out_height, self.out_width)

    @property
    def in_shape(self) -> Tuple[int, int, int]:
        """Input shape as ``(C, H, W)``."""
        return (self.in_channels, self.in_height, self.in_width)

    @property
    def in_channels_per_group(self) -> int:
        """Ifmap channels seen by each output channel."""
        return self.in_channels // self.groups

    @property
    def out_channels_per_group(self) -> int:
        """Ofmap channels produced per group."""
        return self.out_channels // self.groups

    # ------------------------------------------------------------------ #
    # complexity
    # ------------------------------------------------------------------ #
    @property
    def macs_per_output(self) -> int:
        """MACs needed for one output pixel (one channel)."""
        return self.kernel_size * self.kernel_size * self.in_channels_per_group

    @property
    def macs(self) -> int:
        """Total multiply-accumulates for one input image."""
        return self.macs_per_output * self.out_channels * self.out_height * self.out_width

    @property
    def operations(self) -> int:
        """Total operations (2 per MAC: multiply + add), the paper's GOPS basis."""
        return 2 * self.macs

    @property
    def weight_count(self) -> int:
        """Number of kernel weights in the layer."""
        return (
            self.kernel_size
            * self.kernel_size
            * self.in_channels_per_group
            * self.out_channels
        )

    @property
    def input_pixels(self) -> int:
        """Unpadded ifmap pixels per image."""
        return self.in_channels * self.in_height * self.in_width

    @property
    def output_pixels(self) -> int:
        """Ofmap pixels per image."""
        return self.out_channels * self.out_height * self.out_width

    def weight_bytes(self, word_bytes: int = 2) -> int:
        """Storage for the layer's kernels at ``word_bytes`` per weight."""
        return self.weight_count * word_bytes

    def input_bytes(self, word_bytes: int = 2) -> int:
        """Storage for one image's ifmaps."""
        return self.input_pixels * word_bytes

    def output_bytes(self, word_bytes: int = 2) -> int:
        """Storage for one image's ofmaps."""
        return self.output_pixels * word_bytes

    def channel_pairs(self) -> int:
        """Number of (ofmap channel, ifmap channel) 2D convolutions per image.

        This is the unit of work a systolic primitive executes: one pass of
        one 2D kernel plane over one ifmap channel.
        """
        return self.out_channels * self.in_channels_per_group

    def scaled(self, **changes) -> "ConvLayer":
        """Return a copy with selected fields replaced (keyword arguments)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human readable description."""
        return (
            f"{self.name}: {self.in_channels}x{self.in_height}x{self.in_width} -> "
            f"{self.out_channels}x{self.out_height}x{self.out_width}, "
            f"K={self.kernel_size}, S={self.stride}, P={self.padding}, G={self.groups}, "
            f"{self.macs / 1e6:.1f}M MACs"
        )


@dataclass(frozen=True)
class PoolingLayer:
    """A max/average pooling layer (kept for complete network descriptions).

    Pooling layers are not accelerated by Chain-NN's chain (the paper only
    evaluates convolutional layers) but the network zoo keeps them so that
    inter-layer feature-map sizes remain faithful to the original networks.
    """

    name: str
    channels: int
    in_height: int
    in_width: int
    kernel_size: int
    stride: int
    mode: str = "max"

    def __post_init__(self) -> None:
        if self.mode not in ("max", "avg"):
            raise WorkloadError(f"{self.name}: pooling mode must be 'max' or 'avg'")
        for attr in ("channels", "in_height", "in_width", "kernel_size", "stride"):
            value = getattr(self, attr)
            if not isinstance(value, int) or value <= 0:
                raise WorkloadError(f"{self.name}: {attr} must be a positive int")

    @property
    def out_height(self) -> int:
        """Output height after pooling."""
        return (self.in_height - self.kernel_size) // self.stride + 1

    @property
    def out_width(self) -> int:
        """Output width after pooling."""
        return (self.in_width - self.kernel_size) // self.stride + 1


@dataclass(frozen=True)
class FullyConnectedLayer:
    """A fully connected layer, representable as a 1x1 convolution.

    Chain-NN focuses on convolutional layers; FC layers are included in the
    zoo for completeness and can be lowered to :class:`ConvLayer` via
    :meth:`as_conv` for what-if analyses.
    """

    name: str
    in_features: int
    out_features: int

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise WorkloadError(f"{self.name}: feature counts must be positive")

    @property
    def macs(self) -> int:
        """MAC count for one input vector."""
        return self.in_features * self.out_features

    def as_conv(self) -> ConvLayer:
        """Lower to an equivalent 1x1 convolution over a 1x1 feature map."""
        return ConvLayer(
            name=self.name,
            in_channels=self.in_features,
            out_channels=self.out_features,
            in_height=1,
            in_width=1,
            kernel_size=1,
        )
