"""Network container: an ordered list of layers plus aggregate statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Union

from repro.cnn.layer import ConvLayer, FullyConnectedLayer, PoolingLayer
from repro.errors import WorkloadError

Layer = Union[ConvLayer, PoolingLayer, FullyConnectedLayer]


@dataclass
class Network:
    """A CNN described as an ordered sequence of layers.

    Only :class:`~repro.cnn.layer.ConvLayer` entries are dispatched to the
    accelerator models; pooling/FC layers are carried along for shape
    bookkeeping and reporting.
    """

    name: str
    layers: List[Layer] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("a network needs a non-empty name")

    # ------------------------------------------------------------------ #
    # access helpers
    # ------------------------------------------------------------------ #
    @property
    def conv_layers(self) -> List[ConvLayer]:
        """The convolutional layers, in execution order."""
        return [layer for layer in self.layers if isinstance(layer, ConvLayer)]

    def conv_layer(self, name: str) -> ConvLayer:
        """Look up a convolutional layer by name."""
        for layer in self.conv_layers:
            if layer.name == name:
                return layer
        raise WorkloadError(f"{self.name}: no convolutional layer named {name!r}")

    def add(self, layer: Layer) -> "Network":
        """Append a layer and return ``self`` for chaining."""
        self.layers.append(layer)
        return self

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------ #
    # aggregate statistics
    # ------------------------------------------------------------------ #
    @property
    def total_conv_macs(self) -> int:
        """MACs of all convolutional layers for one input image."""
        return sum(layer.macs for layer in self.conv_layers)

    @property
    def total_conv_operations(self) -> int:
        """Operations (2x MACs) of all convolutional layers for one image."""
        return 2 * self.total_conv_macs

    @property
    def total_conv_weights(self) -> int:
        """Number of convolutional kernel weights in the network."""
        return sum(layer.weight_count for layer in self.conv_layers)

    def total_conv_weight_bytes(self, word_bytes: int = 2) -> int:
        """Bytes of convolutional weights at the given word size."""
        return self.total_conv_weights * word_bytes

    def summary(self) -> str:
        """Multi-line human readable summary of the convolutional layers."""
        lines = [f"{self.name}: {len(self.conv_layers)} conv layers, "
                 f"{self.total_conv_macs / 1e6:.0f}M MACs/image, "
                 f"{self.total_conv_weights / 1e6:.2f}M weights"]
        for layer in self.conv_layers:
            lines.append("  " + layer.describe())
        return "\n".join(lines)


def validate_chaining(layers: Sequence[ConvLayer]) -> None:
    """Check that consecutive conv layers have compatible channel counts.

    The zoo definitions interleave pooling layers, so this helper is only
    applied to directly-chained convolution stacks (e.g. VGG blocks).
    """
    for previous, current in zip(layers, layers[1:]):
        if previous.out_channels != current.in_channels:
            raise WorkloadError(
                f"layer {current.name} expects {current.in_channels} input channels "
                f"but {previous.name} produces {previous.out_channels}"
            )
