"""Network zoo: the CNNs the paper evaluates.

The paper generates test data from pre-trained MatConvNet models of MNIST
(LeNet-style), CIFAR-10, AlexNet and VGG-16.  The accelerator's timing,
utilization, traffic and power depend only on layer *geometry*, so the zoo
reproduces the layer shapes exactly; weights/activations are synthesised by
:mod:`repro.cnn.generator` when functional simulation needs them.

AlexNet layer geometry follows Krizhevsky et al. 2012 (227x227 input,
grouped conv2/4/5), which yields the 666M MACs per image the paper quotes
for the five convolutional layers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cnn.layer import ConvLayer, FullyConnectedLayer, PoolingLayer
from repro.cnn.network import Network


def alexnet() -> Network:
    """AlexNet's five convolutional layers (227x227x3 input, grouped conv2/4/5)."""
    net = Network(name="AlexNet")
    net.add(ConvLayer("conv1", in_channels=3, out_channels=96, in_height=227, in_width=227,
                      kernel_size=11, stride=4, padding=0, groups=1))
    net.add(PoolingLayer("pool1", channels=96, in_height=55, in_width=55, kernel_size=3, stride=2))
    net.add(ConvLayer("conv2", in_channels=96, out_channels=256, in_height=27, in_width=27,
                      kernel_size=5, stride=1, padding=2, groups=2))
    net.add(PoolingLayer("pool2", channels=256, in_height=27, in_width=27, kernel_size=3, stride=2))
    net.add(ConvLayer("conv3", in_channels=256, out_channels=384, in_height=13, in_width=13,
                      kernel_size=3, stride=1, padding=1, groups=1))
    net.add(ConvLayer("conv4", in_channels=384, out_channels=384, in_height=13, in_width=13,
                      kernel_size=3, stride=1, padding=1, groups=2))
    net.add(ConvLayer("conv5", in_channels=384, out_channels=256, in_height=13, in_width=13,
                      kernel_size=3, stride=1, padding=1, groups=2))
    net.add(PoolingLayer("pool5", channels=256, in_height=13, in_width=13, kernel_size=3, stride=2))
    net.add(FullyConnectedLayer("fc6", in_features=256 * 6 * 6, out_features=4096))
    net.add(FullyConnectedLayer("fc7", in_features=4096, out_features=4096))
    net.add(FullyConnectedLayer("fc8", in_features=4096, out_features=1000))
    return net


def _vgg_block(prefix: str, count: int, in_channels: int, out_channels: int,
               size: int) -> List[ConvLayer]:
    """Build ``count`` chained 3x3 convolutions of a VGG block."""
    layers = []
    channels = in_channels
    for index in range(count):
        layers.append(ConvLayer(
            name=f"{prefix}_{index + 1}",
            in_channels=channels,
            out_channels=out_channels,
            in_height=size,
            in_width=size,
            kernel_size=3,
            stride=1,
            padding=1,
        ))
        channels = out_channels
    return layers


def vgg16() -> Network:
    """VGG-16 convolutional layers (224x224x3 input, thirteen 3x3 convolutions)."""
    net = Network(name="VGG-16")
    specs = [
        ("conv1", 2, 3, 64, 224),
        ("conv2", 2, 64, 128, 112),
        ("conv3", 3, 128, 256, 56),
        ("conv4", 3, 256, 512, 28),
        ("conv5", 3, 512, 512, 14),
    ]
    for prefix, count, in_ch, out_ch, size in specs:
        for layer in _vgg_block(prefix, count, in_ch, out_ch, size):
            net.add(layer)
        net.add(PoolingLayer(f"pool_{prefix}", channels=out_ch, in_height=size,
                             in_width=size, kernel_size=2, stride=2))
    net.add(FullyConnectedLayer("fc6", in_features=512 * 7 * 7, out_features=4096))
    net.add(FullyConnectedLayer("fc7", in_features=4096, out_features=4096))
    net.add(FullyConnectedLayer("fc8", in_features=4096, out_features=1000))
    return net


def lenet5() -> Network:
    """LeNet-style MNIST network (the paper's MNIST test case)."""
    net = Network(name="LeNet-5")
    net.add(ConvLayer("conv1", in_channels=1, out_channels=20, in_height=28, in_width=28,
                      kernel_size=5, stride=1, padding=0))
    net.add(PoolingLayer("pool1", channels=20, in_height=24, in_width=24, kernel_size=2, stride=2))
    net.add(ConvLayer("conv2", in_channels=20, out_channels=50, in_height=12, in_width=12,
                      kernel_size=5, stride=1, padding=0))
    net.add(PoolingLayer("pool2", channels=50, in_height=8, in_width=8, kernel_size=2, stride=2))
    net.add(FullyConnectedLayer("fc3", in_features=50 * 4 * 4, out_features=500))
    net.add(FullyConnectedLayer("fc4", in_features=500, out_features=10))
    return net


def cifar10_quick() -> Network:
    """The MatConvNet ``cifar-quick`` style network (the paper's CIFAR-10 case)."""
    net = Network(name="CIFAR10-quick")
    net.add(ConvLayer("conv1", in_channels=3, out_channels=32, in_height=32, in_width=32,
                      kernel_size=5, stride=1, padding=2))
    net.add(PoolingLayer("pool1", channels=32, in_height=32, in_width=32, kernel_size=3, stride=2))
    net.add(ConvLayer("conv2", in_channels=32, out_channels=32, in_height=15, in_width=15,
                      kernel_size=5, stride=1, padding=2))
    net.add(PoolingLayer("pool2", channels=32, in_height=15, in_width=15, kernel_size=3, stride=2))
    net.add(ConvLayer("conv3", in_channels=32, out_channels=64, in_height=7, in_width=7,
                      kernel_size=5, stride=1, padding=2))
    net.add(PoolingLayer("pool3", channels=64, in_height=7, in_width=7, kernel_size=3, stride=2))
    net.add(FullyConnectedLayer("fc4", in_features=64 * 3 * 3, out_features=64))
    net.add(FullyConnectedLayer("fc5", in_features=64, out_features=10))
    return net


def tiny_test_network(kernel_size: int = 3, channels: int = 2, size: int = 8) -> Network:
    """A small synthetic network used by unit tests and the cycle-level simulator."""
    net = Network(name="tiny-test")
    net.add(ConvLayer("convA", in_channels=channels, out_channels=4, in_height=size,
                      in_width=size, kernel_size=kernel_size, stride=1, padding=0))
    net.add(ConvLayer("convB", in_channels=4, out_channels=4,
                      in_height=size - kernel_size + 1, in_width=size - kernel_size + 1,
                      kernel_size=kernel_size, stride=1,
                      padding=kernel_size // 2))
    return net


#: registry used by example scripts and the experiment runner
NETWORKS: Dict[str, callable] = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "lenet5": lenet5,
    "cifar10": cifar10_quick,
}


def get_network(name: str) -> Network:
    """Instantiate a zoo network by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in NETWORKS:
        raise KeyError(f"unknown network {name!r}; available: {sorted(NETWORKS)}")
    return NETWORKS[key]()
