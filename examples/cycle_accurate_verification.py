#!/usr/bin/env python3
"""Cycle-accurate verification of the dual-channel PE chain.

Run with::

    python examples/cycle_accurate_verification.py

This is the reproduction of the paper's verification methodology (Sec. V.A):
layers are executed on the register-accurate model of the systolic primitives
— dual ifmap channels, stationary kernels, column-wise scan — and the outputs
are checked on the fly against the software reference, exactly like the
paper's ModelSim-vs-simulator comparison.  It also demonstrates the 16-bit
fixed-point datapath: the script reports the quantisation error against the
floating-point reference.
"""

from __future__ import annotations

import numpy as np

from repro import ChainConfig, tiny_test_network
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.cnn.reference import conv2d_direct
from repro.sim.cycle import CycleAccurateChainSimulator


def verify_layer(simulator, layer, generator) -> None:
    ifmaps, weights = generator.layer_pair(layer)
    result = simulator.run_layer(layer, ifmaps, weights)
    float_reference = conv2d_direct(layer, ifmaps, weights)
    quant_error = float(np.max(np.abs(float_reference - result.ofmaps)))
    signal = float(np.sqrt(np.mean(float_reference ** 2)))

    print(f"layer {layer.name:<12} K={layer.kernel_size} stride={layer.stride} "
          f"groups={layer.groups}")
    print(f"  exact match vs fixed-point reference : "
          f"{result.reference_max_abs_error:.2e} max abs error")
    print(f"  quantisation error vs float reference: {quant_error / signal * 100:.3f} % of RMS")
    print(f"  primitive cycles                     : {result.stats.primitive_cycles}")
    print(f"  chain cycles (over {result.layer.kernel_size ** 2}-PE primitives)  : "
          f"{result.chain_cycles_estimate:.0f}")
    print(f"  MACs executed                        : {result.stats.macs} "
          f"(useful: {layer.macs})")
    print(f"  ifmap format {result.ifmap_format}, weight format {result.weight_format}")
    print()


def main() -> None:
    simulator = CycleAccurateChainSimulator(ChainConfig())
    generator = WorkloadGenerator(seed=2017)

    print("Verifying the tiny test network (stride 1, padded layers)...\n")
    for layer in tiny_test_network().conv_layers:
        verify_layer(simulator, layer, generator)

    print("Verifying AlexNet-shaped corner cases at toy scale...\n")
    corner_cases = [
        ConvLayer("mini_conv1", in_channels=3, out_channels=4, in_height=39, in_width=39,
                  kernel_size=11, stride=4),
        ConvLayer("mini_conv2", in_channels=4, out_channels=4, in_height=15, in_width=15,
                  kernel_size=5, padding=2, groups=2),
        ConvLayer("mini_conv3", in_channels=6, out_channels=6, in_height=13, in_width=13,
                  kernel_size=3, padding=1),
    ]
    for layer in corner_cases:
        verify_layer(simulator, layer, generator)

    print("All layers verified: the cycle-accurate chain matches the reference exactly")
    print("on the quantised operands, with only 16-bit quantisation noise vs float.")


if __name__ == "__main__":
    main()
