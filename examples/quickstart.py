#!/usr/bin/env python3
"""Quickstart: evaluate AlexNet on the paper's 576-PE Chain-NN instantiation.

Run with::

    python examples/quickstart.py

It builds the accelerator facade, runs AlexNet's five convolutional layers at
two batch sizes, and prints the headline numbers the paper reports in
Sec. V.B and Fig. 9/10.
"""

from __future__ import annotations

from repro import ChainNN, alexnet
from repro.analysis.report import render_bar_chart, render_dict_table


def main() -> None:
    network = alexnet()
    chip = ChainNN.paper_configuration(calibrate_power_to=network)

    print(chip.describe())
    print(network.summary())
    print()

    for batch in (4, 128):
        result = chip.run_network(network, batch=batch)
        print(f"--- batch {batch} ---")
        print(f"  frame rate            : {result.frames_per_second:7.1f} fps")
        print(f"  conv time per batch   : {result.performance.conv_time_per_batch_s * 1e3:7.1f} ms")
        print(f"  kernel-load per batch : {result.performance.kernel_load_time_s * 1e3:7.2f} ms")
        print(f"  sustained throughput  : {result.performance.achieved_gops:7.1f} GOPS "
              f"(peak {chip.peak_gops:.1f})")
        print(f"  chip power            : {result.power.total_w * 1e3:7.1f} mW")
        print(f"  energy efficiency     : {chip.peak_gops / result.power.total_w:7.1f} GOPS/W")
        print()

    result = chip.run_network(network, batch=128)
    print(render_bar_chart(result.performance.layer_times_ms(),
                           title="Per-layer convolution time (ms, batch 128) — Fig. 9",
                           unit=" ms"))
    print()
    print(render_dict_table(result.traffic.table(),
                            title="Memory traffic (MB, batch 128) — Table IV dataflow",
                            row_label="layer"))


if __name__ == "__main__":
    main()
