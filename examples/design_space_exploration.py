#!/usr/bin/env python3
"""Design-space exploration: scaling the 1D chain.

Run with::

    python examples/design_space_exploration.py

The paper argues (Sec. III.B) that the 1D chain scales to higher parallelism
and clock frequency with little overhead.  This example sweeps the chain
length, the clock frequency and the batch size on AlexNet and VGG-16, and
prints the worst-case PE utilization across chain lengths — showing why 576
PEs is a good choice for the mainstream kernel sizes.
"""

from __future__ import annotations

from repro import alexnet, vgg16
from repro.analysis.report import render_bar_chart, render_table
from repro.analysis.sweep import DesignSpaceExplorer


def sweep_report(title, points):
    print(render_table([point.as_row() for point in points], title=title,
                       row_names=[point.label for point in points], row_label="design point"))
    print()


def main() -> None:
    for network in (alexnet(), vgg16()):
        print("#" * 78)
        print(f"# workload: {network.name}")
        print("#" * 78)
        explorer = DesignSpaceExplorer(network, batch=16)

        sweep_report("Chain-length sweep @ 700 MHz",
                     explorer.sweep_chain_length((144, 288, 576, 864, 1152)))
        sweep_report("Frequency sweep @ 576 PEs",
                     explorer.sweep_frequency((350, 500, 700, 900)))

        fps_by_batch = explorer.sweep_batch_size((1, 2, 4, 8, 16, 32, 64, 128))
        print(render_bar_chart({f"batch {b}": fps for b, fps in fps_by_batch.items()},
                               title="Frame rate vs batch size (kernel-load amortisation)",
                               unit=" fps"))
        print()

    explorer = DesignSpaceExplorer(alexnet(), batch=16)
    utilization = explorer.utilization_by_chain_length(low=256, high=1152, step=64)
    print(render_bar_chart({f"{n} PEs": 100 * u for n, u in utilization.items()},
                           title="Worst-case PE utilization over kernel sizes 3/5/7/9/11 (%)",
                           unit=" %"))


if __name__ == "__main__":
    main()
