#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Run with::

    python examples/reproduce_paper.py

This is the scripted equivalent of ``python -m repro.experiments.runner``: it
reproduces Table II, Fig. 5, Fig. 9, Table IV, Fig. 10 and Table V, prints
each side-by-side with the published values, and finishes with a one-screen
summary of the headline claims.
"""

from __future__ import annotations

from repro.experiments.runner import run_all


def main() -> None:
    report = run_all()
    print(report.report())
    print()
    print("=" * 78)
    print("Headline reproduction summary")
    print("=" * 78)
    for key, value in report.headline().items():
        print(f"  {key:<36} {value:10.2f}")
    print()
    print("Paper claims for reference: >=84 % PE utilization, 326.2 fps @ batch 128,")
    print("806.4 GOPS peak, 567.5 mW, 1421 GOPS/W, 2.5x-4.1x vs state of the art,")
    print("1.7x area efficiency (6.51k vs 11.02k gates/PE).")


if __name__ == "__main__":
    main()
