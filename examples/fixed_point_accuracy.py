#!/usr/bin/env python3
"""Fixed-point word-length study (the float-to-fixed simulator of Sec. V.A).

Run with::

    python examples/fixed_point_accuracy.py

The paper converts pre-trained networks to 16-bit fixed point before running
them on Chain-NN.  This example reproduces that flow on synthetic tensors
with realistic statistics: for each AlexNet layer geometry it quantises
weights and activations at several word lengths, re-runs the convolution and
reports the signal-to-quantisation-noise ratio — showing why 16 bits is
comfortably sufficient for inference while 8 bits begins to erode accuracy.
"""

from __future__ import annotations

from repro import alexnet
from repro.analysis.report import render_table
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.quantize import bit_width_sweep

BIT_WIDTHS = (8, 10, 12, 16, 20)


def main() -> None:
    network = alexnet()
    generator = WorkloadGenerator(seed=7)

    rows = []
    names = []
    for layer in network.conv_layers:
        # shrink the spatial size so the study runs in seconds; quantisation
        # error statistics depend on value distributions, not on H/W
        study_layer = layer.scaled(
            in_height=min(layer.in_height, 33),
            in_width=min(layer.in_width, 33),
        )
        ifmaps, weights = generator.layer_pair(study_layer, sparsity=0.4)
        sweep = bit_width_sweep(study_layer, ifmaps, weights, bit_widths=BIT_WIDTHS)
        names.append(layer.name)
        rows.append({f"{bits}-bit SQNR (dB)": sweep[bits].sqnr_db for bits in BIT_WIDTHS})

    print(render_table(rows, title="Signal-to-quantisation-noise ratio per word length",
                       row_names=names, row_label="layer"))
    print()
    sixteen = [row["16-bit SQNR (dB)"] for row in rows]
    eight = [row["8-bit SQNR (dB)"] for row in rows]
    print(f"16-bit fixed point keeps SQNR above {min(sixteen):.0f} dB on every layer "
          f"(paper's choice);")
    print(f"8-bit drops to {min(eight):.0f} dB, which is where accuracy starts to suffer.")


if __name__ == "__main__":
    main()
