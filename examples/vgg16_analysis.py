#!/usr/bin/env python3
"""VGG-16 on Chain-NN — the workload the paper prepared but did not report.

Run with::

    python examples/vgg16_analysis.py

Sec. V.A generates test data for VGG-16 alongside AlexNet; the evaluation
section, however, only reports AlexNet.  This example completes that study:
it runs VGG-16 through the same performance, traffic, power, scheduling and
bandwidth models, and contrasts it with AlexNet.  VGG-16 is the chain's best
case — every layer is a 3x3 stride-1 convolution, so all 576 PEs stay active
and the sustained throughput approaches 90 % of peak — while the 30x higher
MAC count per image drops the frame rate to tens of fps.
"""

from __future__ import annotations

from repro import ChainNN, alexnet, vgg16
from repro.analysis.report import render_bar_chart, render_dict_table, render_table
from repro.core.kernel_loader import KernelLoader
from repro.core.scheduler import BatchScheduler
from repro.memory.bandwidth import BandwidthAnalyzer


def main() -> None:
    network = vgg16()
    chip = ChainNN.paper_configuration(calibrate_power_to=alexnet())

    result = chip.run_network(network, batch=16)
    reference = chip.run_network(alexnet(), batch=16)

    print(chip.describe())
    print(network.summary())
    print()
    print(render_table(
        [reference.summary(), result.summary()],
        title="AlexNet vs VGG-16 on the same chain (batch 16)",
        row_names=["AlexNet", "VGG-16"],
        row_label="network",
    ))
    print()

    print(render_bar_chart(result.performance.layer_times_ms(),
                           title="VGG-16 per-layer convolution time (ms, batch 16)",
                           unit=" ms"))
    print()

    # scheduling view: kernel loading is negligible for VGG despite 14.7M weights
    scheduler = BatchScheduler(chip.config, chip.performance_model)
    sensitivity = scheduler.batch_sensitivity(network, batches=(1, 4, 16, 64))
    print(render_dict_table(
        {f"batch {batch}": row for batch, row in sensitivity.items()},
        title="Batch-size sensitivity (fps, kernel-load share, first-image latency)",
        row_label="batch",
    ))
    print()

    # kMemory pressure: VGG needs up to 4096 weights per PE, 16x the capacity
    loader = KernelLoader(chip.config)
    refills = loader.validate_against_capacity(network)
    print(render_bar_chart({name: count for name, count in refills.items()},
                           title="kMemory refills per layer (capacity = 256 weights/PE)",
                           unit=" refills"))
    print()

    # bandwidth: even the 512-channel layers stay far from DRAM-bound
    bandwidth = BandwidthAnalyzer(chip.config)
    table = bandwidth.summary_table(network, batch=16)
    worst = max(table.values(), key=lambda row: row["DRAM util. (%)"])
    print(f"worst-case DRAM utilisation across VGG-16 layers: {worst['DRAM util. (%)']:.1f} % "
          f"of a single LPDDR3-1600 channel")


if __name__ == "__main__":
    main()
