#!/usr/bin/env python3
"""Architecture comparison: Chain-NN vs memory-centric vs 2D spatial designs.

Run with::

    python examples/compare_architectures.py

Reproduces the Sec. III taxonomy argument and Table V quantitatively: the
memory-centric baseline (DaDianNao-like) buys reconfigurability with large,
expensive memory accesses; the 2D spatial baseline (Eyeriss-like) reduces
traffic but pays for the on-chip network and per-PE control; the 1D chain
keeps the reuse while stripping the overheads.  The example also includes the
single-channel chain ablation (Fig. 5) and the roofline view that explains
where the dual-channel scan matters.
"""

from __future__ import annotations

from repro import alexnet
from repro.analysis.comparison import StateOfTheArtComparison
from repro.analysis.report import render_bar_chart, render_dict_table, render_table
from repro.analysis.roofline import RooflineModel
from repro.baselines.single_channel import SingleChannelChain
from repro.core.config import ChainConfig


def main() -> None:
    network = alexnet()
    comparison = StateOfTheArtComparison(network=network, batch=4).run()

    print(render_dict_table(comparison.published_rows,
                            title="Table V — published specifications", row_label="design"))
    print()
    print(render_dict_table(comparison.modelled_rows,
                            title="Table V — regenerated from this library's models",
                            row_label="design"))
    print()
    print(render_bar_chart(comparison.efficiency_ratios,
                           title="Chain-NN energy-efficiency advantage (x)", unit="x"))
    print()
    print(render_dict_table({"gates per PE": comparison.area_efficiency},
                            title="Area efficiency (Sec. V.D)", row_label=""))
    print()

    # Fig. 5 ablation: what the second ifmap channel is worth end to end
    single = SingleChannelChain()
    print(render_table(
        [{"kernel": k, "peak fraction": fraction}
         for k, fraction in single.utilization_by_kernel().items()],
        title="Single-channel chain: reachable fraction of peak (Fig. 5a)",
    ))
    print()

    # roofline: the dual channel keeps every AlexNet layer compute-bound
    for label, config in (("dual-channel", ChainConfig()),
                          ("single-channel", ChainConfig().single_channel())):
        roofline = RooflineModel(config)
        bounds = roofline.summary(network)
        print(f"{label:>15}: " + ", ".join(f"{name}:{bound}" for name, bound in bounds.items()))


if __name__ == "__main__":
    main()
